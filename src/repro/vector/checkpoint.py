"""Checkpoint interop between the vector engine and :class:`NodeCheckpoint`.

The vector engine does not invent its own checkpoint format. A
vectorized slot exports the SAME ``NodeInstance.snapshot()`` payload the
object path writes — a template stack is assembled from the slot's spec
(which fixes every structural detail: libmsr whitelist, task/timer
registration order, tap series names) and the slot's dynamic state is
overlaid onto the template's snapshot leaves. The result restores into
either engine.

Importing goes the other way: :func:`try_import_checkpoint` strictly
validates that an object-engine checkpoint describes exactly the stack
shape the vector engine models (stock timers, no userspace pins, the
regular SPMD directive stream ...) and installs its state into a fresh
one-slot :class:`~repro.vector.engine.VectorGroup`. ANY surprise raises
:class:`~repro.exceptions.CheckpointError`, which the host catches to
fall back to an object :class:`NodeInstance` — correctness never
depends on the importer accepting a checkpoint.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.exceptions import CheckpointError
from repro.hardware.msr import MSRDevice
from repro.hardware.power import PowerSample
from repro.runtime.engine import Publish, Work
from repro.stack.checkpoint import NodeCheckpoint
from repro.stack.spec import StackSpec
from repro.vector.engine import (
    C_BUSY,
    C_IDLE,
    C_SPIN,
    VectorGroup,
    W_DONE,
    W_RUNNING,
    W_SPINNING,
)
from repro.vector.gate import build_profile, profile_key, supports_fast_path

__all__ = ["export_checkpoint", "import_checkpoint", "try_import_checkpoint"]

_BARRIER = "__barrier__"
_MODE_NAME = {C_IDLE: "idle", C_BUSY: "busy", C_SPIN: "spin"}
_MODE_CODE = {name: code for code, name in _MODE_NAME.items()}
_STATUS_NAME = {W_RUNNING: "running", W_SPINNING: "spinning", W_DONE: "done"}
_STATUS_CODE = {name: code for code, name in _STATUS_NAME.items()}


def _template_state(spec: StackSpec) -> NodeCheckpoint:
    """A pre-start checkpoint of a freshly assembled stack for ``spec`` —
    the structural ground truth both directions compare against."""
    from repro.stack.builder import NodeStack

    return NodeStack(spec).launch().snapshot()


# ----------------------------------------------------------------------
# Export: vector slot -> NodeInstance snapshot dict
# ----------------------------------------------------------------------


def export_checkpoint(view) -> dict:
    """A ``NodeInstance.snapshot()``-format checkpoint of one vector slot
    (restorable by :meth:`NodeInstance.from_checkpoint` or re-imported by
    :func:`try_import_checkpoint`)."""
    g: VectorGroup = view.group
    slot: int = view.slot
    cp = _template_state(view.spec)
    state = cp.state
    _overlay_node(state["node"], g, slot)
    _overlay_firmware(state["firmware"], g, slot)
    _overlay_bus(state["bus"], g, slot)
    state["monitors"] = {g.topic: {
        "version": 1,
        "series": g.mon_series[slot].snapshot(),
        "events_seen": int(g.mon_events[slot]),
    }}
    state["controller"] = {
        "version": 1,
        "budget": g.pol_budget[slot],
        "applied": tuple(g.pol_applied[slot]),
        "cap_series": g.cap_series[slot].snapshot(),
    }
    if g.started[slot]:
        _overlay_engine(state["engine"], g, slot)
    return {
        "version": 1,
        "node_id": view.node_id,
        "energy_mark": float(g.energy_mark[slot]),
        "stack": NodeCheckpoint(version=cp.version, spec=cp.spec,
                                state=state),
    }


def _overlay_node(node: dict, g: VectorGroup, slot: int) -> None:
    cfg = g.cfg
    w = g.n_workers
    freq = float(cfg.freq_ladder[int(g.freq_idx[slot])])
    duty = float(cfg.duty_levels[int(g.duty_idx[slot])])
    node["now"] = float(g.now[slot])
    for core_id, core in enumerate(node["cores"]):
        core["freq"] = freq
        core["duty"] = duty
        if core_id < w:
            core["mode"] = _MODE_NAME[int(g.core_mode[slot, core_id])]
            core["compute_frac"] = float(g.core_cf[slot, core_id])
            core["bytes_rate"] = float(g.core_br[slot, core_id])
    counters = node["counters"]
    counters["ins"][:w] = [float(x) for x in g.ctr_ins[slot]]
    counters["cyc"][:w] = [float(x) for x in g.ctr_cyc[slot]]
    counters["l3"][:w] = [float(x) for x in g.ctr_l3[slot]]
    node["pkg_energy"] = float(g.pkg_energy[slot])
    node["dram_energy"] = float(g.dram_energy[slot])
    node["freq_limit"] = float(g.freq_limit[slot])
    node["uncore_scale"] = float(g.uncore_scale[slot])
    node["last_sample"] = (PowerSample(
        package=float(g.ls_package[slot]),
        cores=float(g.ls_cores[slot]),
        uncore=float(g.ls_uncore[slot]),
        dram=float(g.ls_dram[slot]),
    ) if g.ls_valid[slot] else None)


def _overlay_firmware(fw: dict, g: VectorGroup, slot: int) -> None:
    avgw = float(g.fw_avgw[slot])
    fw["limit"] = float(g.fw_limit[slot])
    fw["limit2"] = float(g.fw_limit2[slot])
    fw["enabled"] = bool(g.fw_enabled[slot])
    fw["ddcm_engaged"] = bool(g.fw_ddcm[slot])
    fw["window"] = float(g.fw_window[slot])
    fw["avg_windowed"] = None if math.isnan(avgw) else avgw
    fw["last_energy"] = float(g.fw_last_energy[slot])
    fw["last_time"] = float(g.fw_last_time[slot])


def _overlay_bus(bus: dict, g: VectorGroup, slot: int) -> None:
    bus["rng"] = g.bus_rng[slot].bit_generator.state
    bus["published"] = int(g.bus_published[slot])
    bus["dropped"] = int(g.bus_dropped[slot])
    sub = bus["subs"][0]
    sub["overflowed"] = int(g.bus_overflowed[slot])
    sub["queue"] = list(g.pending[slot])


def _overlay_engine(eng: dict, g: VectorGroup, slot: int) -> None:
    prof = g.profile
    p = int(g.p_idx[slot])
    publishing = not math.isnan(g.queued_pub[slot])
    pub = Publish(prof.topic, float(g.queued_pub[slot])) if publishing \
        else None
    shared = g.shared_rng[slot]
    shared_state = None if shared is None else shared.bit_generator.state
    mpo = prof.ph_mpo[p] if p < prof.n_phases else None
    arrivals = g.arrivals[slot]
    for wid, task in enumerate(eng["tasks"]):
        status_code = int(g.wstatus[slot, wid])
        task["status"] = _STATUS_NAME[status_code]
        task["frac_done"] = float(g.frac[slot, wid])
        task["barrier_pos"] = None
        queue: list = []
        if status_code == W_RUNNING:
            task["work"] = Work(
                cycles=float(g.w_cycles[slot, wid]),
                bytes=float(g.w_bytes[slot, wid]),
                instructions=float(g.w_ins[slot, wid]),
                l3_misses=(float(g.w_miss[slot, wid])
                           if mpo is not None else None),
            )
            queue.append(_BARRIER)
        else:
            task["work"] = None
            if status_code == W_SPINNING:
                task["barrier_pos"] = arrivals.index(wid)
        if wid == 0 and pub is not None and status_code != W_DONE:
            queue.append(pub)
        body = task["body"]
        body["queue"] = queue
        body["exhausted"] = status_code == W_DONE
        body["state"] = {
            "rng": g.rngs[slot][wid].bit_generator.state,
            "shared_rng": shared_state,
            "p_idx": p,
            "it": int(g.it[slot]),
            "pending": 0.0,
            "batched": 0,
            "flushed": False,
            "skew": 1.0,
        }
    eng["ready"] = []
    for rec in eng["timers"]:
        rec["time"] = float(
            {0: g.t_rapl, 1: g.t_mon, 2: g.t_pol}[rec["seq"]][slot])


# ----------------------------------------------------------------------
# Import: NodeInstance snapshot dict -> one-slot vector group
# ----------------------------------------------------------------------


def try_import_checkpoint(host, node_id: int, state: object):
    """Import ``state`` into ``host`` as a vectorized slot, or ``None``
    when the checkpoint is not (provably) vector-representable — the
    caller then builds an object NodeInstance from the very same dict."""
    try:
        return import_checkpoint(host, node_id, state)
    except CheckpointError:
        return None


def import_checkpoint(host, node_id: int, state: object):
    """Strict import (raises :class:`CheckpointError` on any mismatch)."""
    if not isinstance(state, dict) or state.get("version") != 1:
        raise CheckpointError("not a NodeInstance snapshot")
    cp = state.get("stack")
    if not isinstance(cp, NodeCheckpoint) or cp.version != 1:
        raise CheckpointError("not a version-1 NodeCheckpoint")
    spec = cp.spec
    reason = supports_fast_path(spec)
    if reason is not None:
        raise CheckpointError(f"spec is not vectorizable: {reason}")
    if not cp.state.get("launched"):
        raise CheckpointError("unlaunched stacks restore via the object path")
    group = VectorGroup(build_profile(spec), [(node_id, spec)])
    _install_slot(group, 0, spec, cp.state)
    group.energy_mark[0] = float(state["energy_mark"])
    key = profile_key(spec) + ("checkpoint", node_id)
    return host.adopt_group(key, group, node_id, spec)


def _expect(cond: bool, what: str) -> None:
    if not cond:
        raise CheckpointError(f"checkpoint is not vector-representable: {what}")


def _install_slot(g: VectorGroup, slot: int, spec: StackSpec,
                  s: dict) -> None:
    cfg = g.cfg
    prof = g.profile
    w = g.n_workers

    # -- static structure must match a stock budget stack ---------------
    tmpl = _template_state(spec).state
    _expect(s.get("libmsr") == tmpl["libmsr"], "libmsr state differs")
    _expect(s.get("app") == tmpl["app"], "app knobs were tuned")
    taps = s.get("taps") or {}
    for name in ("freq", "duty", "uncore"):
        tap = taps.get(name) or {}
        _expect(tap.get("times") == [], f"{name} tap has samples")
    _expect(MSRDevice._ratio_bits(cfg.f_nominal) ==
            tmpl["libmsr"]["msr"]["device"]["perf_ctl"],
            "perf_ctl was rewritten")

    # -- node ------------------------------------------------------------
    node = s["node"]
    _expect(node.get("version") == 1, "node snapshot version")
    cores = node["cores"]
    _expect(len(cores) == cfg.n_cores, "core count differs")
    freq = cores[0]["freq"]
    duty = cores[0]["duty"]
    _expect(freq in cfg.freq_ladder, "core frequency off the ladder")
    _expect(duty in cfg.duty_levels, "duty level off the grid")
    for core_id, core in enumerate(cores):
        _expect(core["freq"] == freq and core["duty"] == duty,
                "cores run at per-core operating points")
        if core_id >= w:
            _expect(core["mode"] == "idle" and core["compute_frac"] == 0.0
                    and core["bytes_rate"] == 0.0,
                    "a non-worker core is active")
        else:
            _expect(core["mode"] in _MODE_CODE, "unknown core mode")
    counters = node["counters"]
    for key in ("ins", "cyc", "l3"):
        _expect(all(x == 0.0 for x in counters[key][w:]),
                "a non-worker core accrued counters")
    _expect(node["dram_bw_cap"] is None, "a DRAM bandwidth cap is set")
    sample = node["last_sample"]
    _expect(sample is None or isinstance(sample, PowerSample),
            "unknown last_sample type")

    # -- firmware ---------------------------------------------------------
    fw = s["firmware"]
    _expect(fw.get("version") == 1, "firmware snapshot version")
    _expect(fw["dram_limit"] is None, "a DRAM power limit is set")

    # -- bus --------------------------------------------------------------
    bus = s["bus"]
    _expect(bus.get("version") == 1, "bus snapshot version")
    subs = bus["subs"]
    _expect(len(subs) == 1, "bus has extra subscribers")
    sub = subs[0]
    _expect(sub["topic"] == prof.topic and sub["hwm"] == 1000
            and not sub["closed"], "subscriber wiring differs")

    # -- monitors / controller -------------------------------------------
    monitors = s["monitors"]
    _expect(set(monitors) == {prof.topic}, "monitored topics differ")
    mon = monitors[prof.topic]
    _expect(mon.get("version") == 1, "monitor snapshot version")
    ctl = s["controller"]
    _expect(isinstance(ctl, dict) and ctl.get("version") == 1
            and "budget" in ctl and "applied" in ctl,
            "controller is not the budget-tracking policy")
    kind, _value = ctl["applied"]
    _expect(kind in ("set", "unset"), "unknown applied tri-state")

    # -- engine -----------------------------------------------------------
    eng = s["engine"]
    _expect(eng.get("version") == 1, "engine snapshot version")
    _expect(eng["next_tid"] == w, "extra tasks were spawned")
    _expect(eng["next_timer_seq"] == 3, "extra timers were registered")
    _expect(eng["free_cores"] == list(range(cfg.n_cores - 1, w - 1, -1)),
            "core pinning differs")
    timers = {rec["seq"]: rec for rec in eng["timers"]}
    _expect(set(timers) == {0, 1, 2}, "timer set differs")
    periods = {0: 0.01, 1: prof.monitor_interval, 2: 1.0}
    for seq, rec in timers.items():
        _expect(not rec["cancelled"], "a stock timer was cancelled")
        _expect(rec["period"] == periods[seq], "timer period differs")
    tasks = eng["tasks"]
    _expect(len(tasks) == w, "task count differs")

    pre_start = (all(t["status"] == "ready" for t in tasks)
                 and eng["ready"] == list(range(w)))
    if not pre_start:
        _expect(eng["ready"] == [], "tasks are mid-dispatch")

    p_idx = it = None
    shared_state = None
    arrivals: list[tuple[int, int]] = []
    queued_pub = math.nan
    for wid, task in enumerate(tasks):
        _expect(task["tid"] == wid and task["core_id"] == wid
                and task["name"] == prof.task_name(wid),
                "task identity differs")
        _expect(task["wake_time"] == 0.0, "a task has slept")
        body = task["body"]
        _expect(body.get("version") == 1 and body.get("kind") == "SpmdBody",
                "body is not the plain SPMD loop")
        bstate = body["state"]
        _expect(bstate["pending"] == 0.0 and bstate["batched"] == 0
                and not bstate["flushed"],
                "batched reporting state is non-trivial")
        _expect(bstate["skew"] in (None, 1.0), "rank work skew is active")
        if wid == 0:
            p_idx, it = bstate["p_idx"], bstate["it"]
            shared_state = bstate["shared_rng"]
        else:
            _expect((bstate["p_idx"], bstate["it"]) == (p_idx, it),
                    "workers disagree on the loop cursor")
            _expect(bstate["shared_rng"] == shared_state,
                    "workers disagree on the shared factor stream")
        status = task["status"]
        queue = list(body["queue"])
        if pre_start:
            _expect(queue == [] and task["work"] is None
                    and not body["exhausted"], "pre-start body has state")
            continue
        _expect(status in _STATUS_CODE, f"task status {status!r}")
        code = _STATUS_CODE[status]
        _expect(body["exhausted"] == (code == W_DONE),
                "exhausted flag disagrees with status")
        if code == W_RUNNING:
            _expect(queue and queue[0] == _BARRIER,
                    "running task is not headed for the barrier")
            queue = queue[1:]
            work = task["work"]
            _expect(isinstance(work, Work) and work.instructions is not None,
                    "running task carries no regular work")
            g.w_cycles[slot, wid] = work.cycles
            g.w_bytes[slot, wid] = work.bytes
            g.w_ins[slot, wid] = work.ins
            g.w_miss[slot, wid] = work.misses(cfg.cache_line)
        else:
            _expect(task["work"] is None, "idle task carries work")
            if code == W_SPINNING:
                _expect(isinstance(task["barrier_pos"], int),
                        "spinning task without barrier position")
                arrivals.append((task["barrier_pos"], wid))
        if wid == 0 and code != W_DONE:
            if queue:
                pub = queue.pop(0)
                _expect(isinstance(pub, Publish) and pub.topic == prof.topic,
                        "foreign directive in the publish slot")
                queued_pub = pub.value
        _expect(queue == [], "unrecognized directives queued")
        g.wstatus[slot, wid] = code
        g.frac[slot, wid] = task["frac_done"]

    _expect(sorted(pos for pos, _ in arrivals) ==
            list(range(len(arrivals))), "barrier arrival order is broken")

    # -- install ----------------------------------------------------------
    from repro.vector.engine import _generator_from

    g.now[slot] = node["now"]
    g.freq_idx[slot] = cfg.ladder_index(freq)
    _expect(float(cfg.freq_ladder[int(g.freq_idx[slot])]) == freq,
            "frequency does not quantize back")
    g.duty_idx[slot] = list(cfg.duty_levels).index(duty)
    g.freq_limit[slot] = node["freq_limit"]
    g.uncore_scale[slot] = node["uncore_scale"]
    g.pkg_energy[slot] = node["pkg_energy"]
    g.dram_energy[slot] = node["dram_energy"]
    for wid in range(w):
        core = cores[wid]
        g.core_mode[slot, wid] = _MODE_CODE[core["mode"]]
        g.core_cf[slot, wid] = core["compute_frac"]
        g.core_br[slot, wid] = core["bytes_rate"]
    g.ctr_ins[slot] = counters["ins"][:w]
    g.ctr_cyc[slot] = counters["cyc"][:w]
    g.ctr_l3[slot] = counters["l3"][:w]
    if sample is None:
        g.ls_valid[slot] = False
    else:
        g.ls_valid[slot] = True
        g.ls_package[slot] = sample.package
        g.ls_cores[slot] = sample.cores
        g.ls_uncore[slot] = sample.uncore
        g.ls_dram[slot] = sample.dram

    g.fw_limit[slot] = fw["limit"]
    g.fw_limit2[slot] = fw["limit2"]
    g.fw_enabled[slot] = fw["enabled"]
    g.fw_ddcm[slot] = fw["ddcm_engaged"]
    g.fw_window[slot] = fw["window"]
    avgw = fw["avg_windowed"]
    g.fw_avgw[slot] = math.nan if avgw is None else avgw
    g.fw_last_energy[slot] = fw["last_energy"]
    g.fw_last_time[slot] = fw["last_time"]

    g.bus_rng[slot] = _generator_from(bus["rng"])
    g.bus_published[slot] = bus["published"]
    g.bus_dropped[slot] = bus["dropped"]
    g.bus_overflowed[slot] = sub["overflowed"]
    g.pending[slot] = deque(tuple(entry) for entry in sub["queue"])

    g.mon_series[slot].restore(mon["series"])
    g.mon_events[slot] = mon["events_seen"]
    g.cap_series[slot].restore(ctl["cap_series"])
    g.pol_budget[slot] = ctl["budget"]
    g.pol_applied[slot] = ("unset", None) if kind == "unset" \
        else ("set", ctl["applied"][1])

    g.t_rapl[slot] = timers[0]["time"]
    g.t_mon[slot] = timers[1]["time"]
    g.t_pol[slot] = timers[2]["time"]

    g.started[slot] = not pre_start
    if pre_start:
        g.p_idx[slot] = 0
        g.it[slot] = 0
    else:
        g.p_idx[slot] = p_idx
        g.it[slot] = it
    g.queued_pub[slot] = queued_pub
    g.shared_rng[slot] = None if shared_state is None \
        else _generator_from(shared_state)
    g.rngs[slot] = [_generator_from(t["body"]["state"]["rng"])
                    for t in tasks]
    g.arrivals[slot] = [wid for _pos, wid in sorted(arrivals)]
