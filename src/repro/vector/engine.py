"""Structure-of-arrays node engine: batched epochs over many nodes.

One :class:`VectorGroup` advances *all* nodes of a uniform group (same
:class:`~repro.vector.gate.GroupProfile`) through their micro-step loops
simultaneously: application progress and phase state, the power model,
the RAPL window feedback and the hardware counters live in parallel
numpy arrays keyed by node slot, while the discrete events (iteration
refills, barrier releases, monitor/policy ticks, bus deliveries) run as
per-node Python on exactly the rows they touch.

Bit-parity with the object engine is a design invariant, not an
approximation: every per-epoch transfer function is the same
:mod:`repro.hardware.kernels` call the object path makes (element-wise
array application of an IEEE-754 op equals the scalar op), reductions
over cores/workers are written as the same sequential left folds
``accumulate_core_power`` performs, RNG draws come from per-(node,
worker) ``Generator`` objects in the same order the object bodies draw
them, and the timer/delivery epsilons are the engine's own constants.
The eligibility gate caps workers per node at 7 because ``numpy.sum``
re-associates (pairwise) at 8 elements — see
:data:`repro.vector.gate.MAX_VECTOR_WORKERS`.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.apps.kernels import lognormal_factor, sample_quantities
from repro.hardware import kernels as hk
from repro.hardware.msr import (
    PowerLimit,
    RaplUnits,
    decode_power_limit,
    encode_power_limit,
)
from repro.stack.spec import StackSpec
from repro.telemetry.pubsub import Message
from repro.telemetry.timeseries import TimeSeries
from repro.vector.gate import GroupProfile, check_member, member_seed

__all__ = ["VectorGroup", "W_RUNNING", "W_SPINNING", "W_DONE",
           "C_IDLE", "C_BUSY", "C_SPIN"]

# Worker status codes (wstatus array).
W_RUNNING, W_SPINNING, W_DONE = 0, 1, 2
# Core activity modes (core_mode array); map onto CoreMode at checkpoint.
C_IDLE, C_BUSY, C_SPIN = 0, 1, 2

#: Engine timer/delivery slack (same constant as runtime.engine / pubsub).
_TIMER_EPS = 1e-15
#: Completion tolerance (same constant as runtime.engine).
_COMPLETION_RTOL = 1e-12

# Stock component parameters; the gate rejects specs that override any of
# these (firmware_kwargs, custom policy intervals are not expressible via
# StackSpec), so they are structural constants of the fast path.
_RAPL_PERIOD = 0.01        # RaplFirmware control_interval
_RAPL_HEADROOM = 0.03      # RaplFirmware headroom
_RAPL_MAX_STEPS = 5        # RaplFirmware max_steps
_RAPL_MIN_UNCORE = 0.4     # RaplFirmware min_uncore_scale
_POLICY_PERIOD = 1.0       # BudgetTrackingPolicy interval
_BUS_HWM = 1000            # SubSocket high-water mark
_PL1_WINDOW = 0.01         # LibMSR.set_pkg_power_limit default window
_PL1_MASK = 0x00FFFFFF00FFFFFF  # MSR-safe writable bits of 0x610


class VectorGroup:
    """All per-node simulation state of one uniform group, as arrays.

    ``members`` fixes the slot order; ``slot_of`` maps node ids back.
    Scalars per node are ``(n,)`` float/int/bool arrays; per-(node,
    worker) state is ``(n, W)``. Event-owned state (RNGs, bus queues,
    barrier arrival order, telemetry series, the policy's tri-state) stays
    in per-slot Python lists — it is touched only on events.
    """

    #: Every per-node state field; ``snapshot``/``restore`` must cover each
    #: one (enforced by the repro.lint vector-state rule).
    _SOA_FIELDS = (
        "now", "pkg_energy", "dram_energy", "uncore_scale",
        "freq_idx", "duty_idx", "freq_limit", "c_dyn", "leak",
        "energy_mark", "started",
        "wstatus", "frac", "rate", "w_cycles", "w_bytes", "w_ins", "w_miss",
        "core_mode", "core_cf", "core_br", "ctr_ins", "ctr_cyc", "ctr_l3",
        "queued_pub", "p_idx", "it",
        "t_rapl", "t_mon", "t_pol",
        "fw_limit", "fw_limit2", "fw_window", "fw_avgw",
        "fw_enabled", "fw_ddcm", "fw_last_energy", "fw_last_time",
        "mon_events", "bus_published", "bus_dropped", "bus_overflowed",
        "ls_package", "ls_cores", "ls_uncore", "ls_dram", "ls_valid",
        "rngs", "shared_rng", "bus_rng", "pending", "arrivals",
        "mon_series", "cap_series", "pol_budget", "pol_applied",
    )

    def __init__(self, profile: GroupProfile,
                 members: Sequence[tuple[int, StackSpec]]) -> None:
        if not members:
            raise ConfigurationError("a vector group needs at least one node")
        self.profile = profile
        self.cfg = profile.cfg
        self.topic = profile.topic
        self.drop_prob = profile.drop_prob
        self.interval = profile.monitor_interval
        self.n_workers = profile.n_workers

        self.node_ids = [nid for nid, _ in members]
        self.specs = [spec for _, spec in members]
        self._slots = {nid: i for i, (nid, _) in enumerate(members)}
        if len(self._slots) != len(members):
            raise ConfigurationError("duplicate node ids in vector group")
        for _, spec in members:
            check_member(profile, spec)

        cfg = self.cfg
        n, w = len(members), self.n_workers
        self._ladder = np.asarray(cfg.freq_ladder, dtype=float)
        self._duties = np.asarray(cfg.duty_levels, dtype=float)
        self._duty_top = len(cfg.duty_levels) - 1
        self._volt_table = np.asarray([cfg.voltage(f) for f in cfg.freq_ladder])
        self._units = RaplUnits(power=cfg.power_unit, energy=cfg.energy_unit,
                                time=cfg.time_unit)
        # What software reads back from MSR_PKG_POWER_INFO (quantized TDP).
        self._tdp_msr = (round(cfg.tdp / cfg.power_unit) & 0x7FFF) * cfg.power_unit
        self._limit_cache: dict[float, tuple[float, float]] = {}
        self._mon_names = [
            f"{spec.name}:{self.topic}" if spec.name else self.topic
            for spec in self.specs
        ]
        seeds = [member_seed(spec) for spec in self.specs]
        self._seeds = seeds

        # -- node / clock ------------------------------------------------
        self.now = np.zeros(n)
        self.pkg_energy = np.zeros(n)
        self.dram_energy = np.zeros(n)
        self.uncore_scale = np.ones(n)
        self.freq_idx = np.full(n, cfg.ladder_index(cfg.f_nominal), dtype=np.int64)
        self.duty_idx = np.full(n, self._duty_top, dtype=np.int64)
        self.freq_limit = np.full(n, cfg.f_turbo)
        self.c_dyn = np.asarray([
            (s.cfg if s.cfg is not None else cfg).c_dyn for s in self.specs])
        self.leak = np.asarray([
            (s.cfg if s.cfg is not None else cfg).leak_per_volt
            for s in self.specs])
        self.energy_mark = np.zeros(n)
        self.started = np.zeros(n, dtype=bool)

        # -- tasks / app bodies -------------------------------------------
        self.wstatus = np.full((n, w), W_RUNNING, dtype=np.int8)
        self.frac = np.zeros((n, w))
        self.rate = np.zeros((n, w))
        self.w_cycles = np.zeros((n, w))
        self.w_bytes = np.zeros((n, w))
        self.w_ins = np.zeros((n, w))
        self.w_miss = np.zeros((n, w))
        self.queued_pub = np.full(n, math.nan)
        self.p_idx = np.zeros(n, dtype=np.int64)
        self.it = np.zeros(n, dtype=np.int64)

        # -- cores / counters ---------------------------------------------
        self.core_mode = np.full((n, w), C_IDLE, dtype=np.int8)
        self.core_cf = np.zeros((n, w))
        self.core_br = np.zeros((n, w))
        self.ctr_ins = np.zeros((n, w))
        self.ctr_cyc = np.zeros((n, w))
        self.ctr_l3 = np.zeros((n, w))

        # -- timers (next-fire times; seq order rapl=0, mon=1, policy=2) ---
        self.t_rapl = np.full(n, _RAPL_PERIOD)
        self.t_mon = np.full(n, self.interval)
        self.t_pol = np.full(n, _POLICY_PERIOD)

        # -- firmware -----------------------------------------------------
        self.fw_limit = np.full(n, cfg.tdp)
        self.fw_limit2 = np.full(n, 1.2 * cfg.tdp)
        self.fw_window = np.full(n, _RAPL_PERIOD)
        self.fw_avgw = np.full(n, math.nan)   # nan encodes "no EWMA yet"
        self.fw_enabled = np.ones(n, dtype=bool)
        self.fw_ddcm = np.zeros(n, dtype=bool)
        self.fw_last_energy = np.zeros(n)
        self.fw_last_time = np.zeros(n)

        # -- telemetry / bus counters -------------------------------------
        self.mon_events = np.zeros(n, dtype=np.int64)
        self.bus_published = np.zeros(n, dtype=np.int64)
        self.bus_dropped = np.zeros(n, dtype=np.int64)
        self.bus_overflowed = np.zeros(n, dtype=np.int64)

        # -- last power sample (node.accrue caches it for the snapshot) ---
        self.ls_package = np.zeros(n)
        self.ls_cores = np.zeros(n)
        self.ls_uncore = np.zeros(n)
        self.ls_dram = np.zeros(n)
        self.ls_valid = np.zeros(n, dtype=bool)

        # -- event-owned per-slot objects ---------------------------------
        self.rngs = [[np.random.default_rng([seed, wid + 1])
                      for wid in range(w)] for seed in seeds]
        self.shared_rng: list[np.random.Generator | None] = [None] * n
        self.bus_rng = [np.random.default_rng(spec.seed + 1)
                        for spec in self.specs]
        self.pending: list[deque] = [deque() for _ in range(n)]
        self.arrivals: list[list[int]] = [[] for _ in range(n)]
        self.mon_series = [TimeSeries(name) for name in self._mon_names]
        self.cap_series = [TimeSeries("budget-cap") for _ in range(n)]
        self.pol_budget: list[float | None] = [None] * n
        # ("unset", None) until the first tick applies something, then
        # ("set", value) — the picklable tri-state BudgetTrackingPolicy uses.
        self.pol_applied: list[tuple[str, float | None]] = [("unset", None)] * n

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.node_ids)

    def slot_of(self, node_id: int) -> int:
        return self._slots[node_id]

    def receive_budget(self, slot: int, watts: float | None) -> None:
        """Deliver a budget to one node's tracking policy (enforced on
        the policy's next 1 Hz tick, exactly like the object path)."""
        if watts is not None and watts <= 0:
            raise ConfigurationError(f"budget must be positive, got {watts}")
        self.pol_budget[slot] = watts

    def advance(self, slots: np.ndarray, targets: np.ndarray) -> None:
        """Run the listed nodes forward to their target times.

        Each loop pass takes exactly one micro-step on every still-active
        node: recompute rates, pick the per-node ``dt`` to its next event,
        integrate power/progress/counters, then handle completions,
        barrier releases and timer fires on the rows where they land.
        """
        slots = np.asarray(slots, dtype=np.intp)
        targets = np.asarray(targets, dtype=float)
        if np.any(targets < self.now[slots]):
            raise ConfigurationError("cannot advance a vector node backwards")
        # First advance spawns/fills the workers — even for a zero-length
        # run, matching Engine.run()'s dispatch-before-break.
        for s in slots[~self.started[slots]]:
            self._start_node(int(s))
        active = self.now[slots] < targets
        while active.any():
            ids = slots[active]
            tgt = targets[active]
            self._recompute(ids)
            dt = self._timestep(ids, tgt)
            self._accrue(ids, dt)
            self._integrate(ids, dt)
            self.now[ids] = self.now[ids] + dt
            self._completions(ids)
            self._fire_timers(ids)
            active[active] = self.now[ids] < tgt

    def epoch_energy(self, slot: int) -> float:
        """Package energy accrued since the previous call (the
        NodeInstance epoch-energy contract)."""
        delta = float(self.pkg_energy[slot] - self.energy_mark[slot])
        self.energy_mark[slot] = self.pkg_energy[slot]
        return delta

    # ------------------------------------------------------------------
    # Micro-step pieces
    # ------------------------------------------------------------------

    def _clock_arrays(self, ids: np.ndarray):
        freq = self._ladder[self.freq_idx[ids]]
        duty = self._duties[self.duty_idx[ids]]
        return freq, duty, hk.effective_clock(freq, duty)

    def _recompute(self, ids: np.ndarray) -> None:
        """Per-worker progress rates + core activity states (the batched
        Engine._recompute_rates)."""
        w = self.n_workers
        _freq, duty, s = self._clock_arrays(ids)
        link = self.cfg.core_link_bandwidth * duty
        st = self.wstatus[ids]
        run = st == W_RUNNING
        spin = st == W_SPINNING
        cyc = self.w_cycles[ids]
        byt = self.w_bytes[ids]
        s2 = s[:, None]
        membound = run & (byt > 0.0)

        # Demands: uncontended bandwidth each memory-bound worker would use.
        standalone = hk.standalone_time(cyc, byt, s2, link[:, None])
        demand = np.where(
            membound,
            hk.bandwidth_demand(byt, np.where(membound, standalone, 1.0)),
            0.0)

        # Max-min fair allocation, batched. The demand sum and the
        # progressive fill visit the same W slots the object allocator
        # visits (its stable ascending sort puts the padding zeros first,
        # where they grant 0 and leave `remaining` untouched).
        total = np.zeros(len(ids))
        for col in range(w):
            total = total + demand[:, col]
        capacity = self.cfg.mem_bandwidth * self.uncore_scale[ids]
        grants = demand.copy()
        over = np.nonzero(total > capacity)[0]
        if over.size:
            d = demand[over]
            order = np.argsort(d, axis=1, kind="stable")
            g = np.empty_like(d)
            remaining = capacity[over].copy()
            rows = np.arange(len(over))
            for k in range(w):
                idx = order[:, k]
                dk = d[rows, idx]
                fair = hk.fair_share_fill(remaining, w - k)
                gk = np.minimum(dk, fair)
                g[rows, idx] = gk
                remaining = remaining - gk
            grants[over] = g

        rate = np.zeros_like(cyc)
        rate = np.where(membound,
                        hk.progress_rate(grants, np.where(membound, byt, 1.0)),
                        rate)
        conly = run & ~membound
        if conly.any():
            rate = np.where(
                conly,
                np.broadcast_to(s2, cyc.shape) / np.where(conly, cyc, 1.0),
                rate)
        cfq = hk.compute_fraction(cyc, rate, np.broadcast_to(s2, cyc.shape))
        cf = np.where(run, np.minimum(cfq, 1.0), 0.0)

        mode = np.full(st.shape, C_IDLE, dtype=np.int8)
        mode[run] = C_BUSY
        mode[spin] = C_SPIN
        ccf = np.where(run, cf, 0.0)
        ccf[spin] = 1.0
        cbr = np.where(membound, grants, 0.0)

        self.rate[ids] = np.where(run, rate, 0.0)
        self.core_mode[ids] = mode
        self.core_cf[ids] = ccf
        self.core_br[ids] = cbr

    def _timestep(self, ids: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """dt to each node's nearest event: a worker finishing, a timer,
        or the advance target."""
        rate = self.rate[ids]
        frac = self.frac[ids]
        eligible = (self.wstatus[ids] == W_RUNNING) & (rate > 0.0)
        t_left = np.full(rate.shape, math.inf)
        np.divide(1.0 - frac, rate, out=t_left, where=eligible)
        dt = t_left.min(axis=1)
        nw = self.now[ids]
        t_next = np.minimum(np.minimum(self.t_rapl[ids], self.t_mon[ids]),
                            self.t_pol[ids])
        dt = np.minimum(dt, t_next - nw)
        dt = np.minimum(dt, targets - nw)
        if not np.isfinite(dt).all():
            raise ConfigurationError("vector engine has no next event")
        return np.maximum(dt, 0.0)

    def _accrue(self, ids: np.ndarray, dt: np.ndarray) -> None:
        """Power sample + energy accrual (runs even for dt == 0, exactly
        like SimulatedNode.accrue at the head of Engine._integrate)."""
        freq, duty, _s = self._clock_arrays(ids)
        volt = self._volt_table[self.freq_idx[ids]]
        package, cores, uncore, dram = self._power_sample(
            ids, volt, freq, duty)
        self.pkg_energy[ids] = self.pkg_energy[ids] + package * dt
        self.dram_energy[ids] = self.dram_energy[ids] + dram * dt
        self.ls_package[ids] = package
        self.ls_cores[ids] = cores
        self.ls_uncore[ids] = uncore
        self.ls_dram[ids] = dram
        self.ls_valid[ids] = True

    def _power_sample(self, rows: np.ndarray, volt, freq, duty):
        """PowerModel.sample over rows: same core_power kernel, same
        sequential left fold over the 24 cores (workers first, then the
        identical idle cores one by one — fold order is bit-relevant)."""
        cfg = self.cfg
        cmode = self.core_mode[rows]
        act = np.where(
            cmode == C_BUSY,
            hk.busy_activity(self.core_cf[rows], cfg.stall_activity),
            np.where(cmode == C_SPIN, cfg.spin_activity, cfg.sleep_activity))
        cd = self.c_dyn[rows]
        lk = self.leak[rows]
        total = np.zeros(len(rows))
        traffic = np.zeros(len(rows))
        for col in range(self.n_workers):
            total = total + hk.core_power(volt, freq, duty, act[:, col], cd, lk)
            traffic = traffic + self.core_br[rows, col]
        idle_p = hk.core_power(volt, freq, duty, cfg.sleep_activity, cd, lk)
        for _ in range(cfg.n_cores - self.n_workers):
            total = total + idle_p
        uncore = hk.uncore_power(traffic, cfg.uncore_base, cfg.uncore_per_bw)
        dram = hk.dram_power(traffic, cfg.dram_base, cfg.dram_per_bw)
        return total + uncore, total, uncore, dram

    def _predicted_power(self, rows: np.ndarray, volt, freq, duty):
        """RaplFirmware._predicted_power over rows (package = cores +
        uncore, no DRAM; activity from the *stored* core states)."""
        package, _cores, _uncore, _dram = self._power_sample(
            rows, volt, freq, duty)
        return package

    def _integrate(self, ids: np.ndarray, dt: np.ndarray) -> None:
        """Progress + counter accrual. Zero increments on dt == 0 rows are
        bitwise no-ops (x + 0.0 == x for the non-negative quantities
        here), so no masking is needed for them."""
        _freq, _duty, s = self._clock_arrays(ids)
        st = self.wstatus[ids]
        run = st == W_RUNNING
        spin = st == W_SPINNING
        dtc = dt[:, None]
        s2 = s[:, None]
        rate = self.rate[ids]
        frac = self.frac[ids]
        dx = np.where(run, np.minimum(rate * dtc, 1.0 - frac), 0.0)
        self.frac[ids] = frac + dx
        ins_inc = (np.where(run, self.w_ins[ids] * dx, 0.0)
                   + np.where(spin, (s2 * self.cfg.spin_ipc) * dtc, 0.0))
        cyc_inc = np.where(run | spin, s2 * dtc, 0.0)
        l3_inc = np.where(run, self.w_miss[ids] * dx, 0.0)
        self.ctr_ins[ids] = self.ctr_ins[ids] + ins_inc
        self.ctr_cyc[ids] = self.ctr_cyc[ids] + cyc_inc
        self.ctr_l3[ids] = self.ctr_l3[ids] + l3_inc

    # ------------------------------------------------------------------
    # Discrete events
    # ------------------------------------------------------------------

    def _start_node(self, slot: int) -> None:
        self.started[slot] = True
        self._fill_iteration(slot)

    def _completions(self, ids: np.ndarray) -> None:
        frac = self.frac[ids]
        comp = (self.wstatus[ids] == W_RUNNING) & \
            (frac >= 1.0 - _COMPLETION_RTOL)
        if not comp.any():
            return
        for r in np.nonzero(comp.any(axis=1))[0]:
            slot = int(ids[r])
            # Completed tasks join the ready queue in tid order and are
            # dispatched LIFO, so they reach the barrier in descending
            # worker order — arrival order decides barrier_pos in
            # checkpoints, so it is replicated exactly.
            for wid in np.nonzero(comp[r])[0][::-1]:
                wid = int(wid)
                self.frac[slot, wid] = 1.0
                self.wstatus[slot, wid] = W_SPINNING
                self.arrivals[slot].append(wid)
            if len(self.arrivals[slot]) == self.n_workers:
                self._release(slot)

    def _release(self, slot: int) -> None:
        """Barrier release: worker 0 publishes the iteration's progress
        (queued at fill time), then every worker refills."""
        if not math.isnan(self.queued_pub[slot]):
            self._publish(slot, float(self.queued_pub[slot]))
            self.queued_pub[slot] = math.nan
        self._fill_iteration(slot)
        self.arrivals[slot].clear()

    def _fill_iteration(self, slot: int) -> None:
        """One SpmdBody._fill per worker, batched per node: advance the
        (phase, iteration) cursor, draw the shared factor once (all
        worker copies of the shared stream are in lockstep), then each
        worker's private jitter from its own generator."""
        prof = self.profile
        p = int(self.p_idx[slot])
        t = int(self.it[slot])
        n_phases = prof.n_phases
        while p < n_phases and t >= prof.ph_iterations[p]:
            p += 1
            t = 0
            self.shared_rng[slot] = None
        if p >= n_phases:
            self.wstatus[slot, :] = W_DONE
            # StopIteration marks the core idle immediately (before the
            # next recompute) — visible to same-instant RAPL prediction.
            self.core_mode[slot, :] = C_IDLE
            self.core_cf[slot, :] = 0.0
            self.core_br[slot, :] = 0.0
            self.rate[slot, :] = 0.0
            self.queued_pub[slot] = math.nan
            self.p_idx[slot] = n_phases
            self.it[slot] = 0
            return
        if self.shared_rng[slot] is None:
            self.shared_rng[slot] = np.random.default_rng(
                [self._seeds[slot], 0, p])
        sj = prof.ph_shared_jitter[p]
        shared = 1.0
        if sj > 0:
            shared = float(lognormal_factor(
                self.shared_rng[slot].normal(0.0, sj)))
        jit = prof.ph_jitter[p]
        base = prof.ph_cycles[p]
        bpc = prof.ph_bpc[p]
        ipc = prof.ph_ipc[p]
        mpo = prof.ph_mpo[p]
        rngs = self.rngs[slot]
        for wid in range(self.n_workers):
            factor = shared
            if jit > 0:
                factor = factor * float(lognormal_factor(
                    rngs[wid].normal(0.0, jit)))
            cycles, nbytes, ins, misses = sample_quantities(
                base, factor, bpc, ipc, mpo)
            self.w_cycles[slot, wid] = cycles
            self.w_bytes[slot, wid] = nbytes
            self.w_ins[slot, wid] = ins
            # Same truthiness rule as Work.misses: an explicit-but-zero
            # miss count falls back to the streaming estimate.
            self.w_miss[slot, wid] = (
                misses if misses else nbytes / self.cfg.cache_line)
            self.frac[slot, wid] = 0.0
            self.wstatus[slot, wid] = W_RUNNING
        self.queued_pub[slot] = (
            prof.ph_ppi[p] if prof.ph_publish[p] else math.nan)
        self.p_idx[slot] = p
        self.it[slot] = t + 1

    def _publish(self, slot: int, value: float) -> None:
        """MessageBus._publish for the node's single progress topic."""
        self.bus_published[slot] += 1
        if self.drop_prob > 0.0 and \
                self.bus_rng[slot].random() < self.drop_prob:
            self.bus_dropped[slot] += 1
            return
        now = float(self.now[slot])
        if len(self.pending[slot]) >= _BUS_HWM:
            self.bus_overflowed[slot] += 1
            return
        self.pending[slot].append((now, Message(now, self.topic, value)))

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def _fire_timers(self, ids: np.ndarray) -> None:
        """Fire due timers in the engine's (time, seq) heap order: the
        firmware (seq 0) wins ties against the monitor (seq 1), which
        wins against the policy (seq 2). One timer per node per round."""
        for _ in range(8):
            nw = self.now[ids] + _TIMER_EPS
            tr = self.t_rapl[ids]
            tm = self.t_mon[ids]
            tp = self.t_pol[ids]
            due_r = tr <= nw
            due_m = tm <= nw
            due_p = tp <= nw
            if not (due_r.any() or due_m.any() or due_p.any()):
                return
            fire_r = due_r & (~due_m | (tr <= tm)) & (~due_p | (tr <= tp))
            fire_m = due_m & ~fire_r & (~due_p | (tm <= tp))
            fire_p = due_p & ~fire_r & ~fire_m
            if fire_r.any():
                rows = ids[fire_r]
                self._rapl_tick(rows)
                self.t_rapl[rows] = self.t_rapl[rows] + _RAPL_PERIOD
            if fire_m.any():
                rows = ids[fire_m]
                self._monitor_tick(rows)
                self.t_mon[rows] = self.t_mon[rows] + self.interval
            if fire_p.any():
                rows = ids[fire_p]
                self._policy_tick(rows)
                self.t_pol[rows] = self.t_pol[rows] + _POLICY_PERIOD
        raise ConfigurationError("vector timer rounds did not converge")

    def _rapl_tick(self, rows: np.ndarray) -> None:
        """RaplFirmware._tick, batched. The periodic re-arm happens in
        _fire_timers for every fired row, including dt <= 0 early returns."""
        cfg = self.cfg
        nw = self.now[rows]
        dt = nw - self.fw_last_time[rows]
        has = dt > 0
        if not has.any():
            return
        sub = rows[has]
        dts = dt[has]
        pkg = self.pkg_energy[sub]
        avg = hk.average_power(pkg, self.fw_last_energy[sub], dts)
        self.fw_last_energy[sub] = pkg
        self.fw_last_time[sub] = nw[has]
        prev = self.fw_avgw[sub]
        alpha = hk.ewma_alpha_array(dts, self.fw_window[sub])
        windowed = np.where(np.isnan(prev), avg,
                            hk.ewma_update(prev, avg, alpha))
        self.fw_avgw[sub] = windowed

        enabled = self.fw_enabled[sub]
        cap = np.where(enabled, np.minimum(self.fw_limit[sub], cfg.tdp),
                       cfg.tdp)
        # Uncore DVFS follows the pre-tick core frequency.
        freq = self._ladder[self.freq_idx[sub]]
        capping = enabled & (self.fw_limit[sub] < cfg.tdp)
        self.uncore_scale[sub] = np.where(
            capping,
            hk.uncore_dvfs_scale_array(freq, cfg.f_nominal, _RAPL_MIN_UNCORE),
            1.0)

        # PL2: hard proportional drop on the instantaneous average.
        pl2 = enabled & (avg > self.fw_limit2[sub])
        if pl2.any():
            hot = sub[pl2]
            self.freq_idx[hot] = np.maximum(
                0, self.freq_idx[hot] - _RAPL_MAX_STEPS)
        rest = ~pl2
        if not rest.any():
            return
        sub = sub[rest]
        windowed = windowed[rest]
        cap = cap[rest]

        over = windowed > cap
        if over.any():
            hot = sub[over]
            steps = hk.throttle_steps_array(windowed[over], cap[over],
                                            _RAPL_MAX_STEPS)
            fi = self.freq_idx[hot]
            can_dvfs = fi > 0
            if can_dvfs.any():
                dn = hot[can_dvfs]
                self.freq_idx[dn] = np.maximum(0, fi[can_dvfs] - steps[can_dvfs])
            floor = hot[~can_dvfs]
            if floor.size:
                cur = self.duty_idx[floor]
                ddcm = floor[cur > 0]
                if ddcm.size:
                    self.duty_idx[ddcm] = self.duty_idx[ddcm] - 1
                    self.fw_ddcm[ddcm] = True

        under = ~over & (windowed < cap * (1.0 - _RAPL_HEADROOM))
        if not under.any():
            return
        cool = sub[under]
        cap_u = cap[under]
        throttled = self.duty_idx[cool] < self._duty_top
        # DDCM undo first (only the firmware's own duty reductions).
        ddcm_rows = cool[throttled]
        ddcm_caps = cap_u[throttled]
        own = self.fw_ddcm[ddcm_rows]
        ddcm_rows = ddcm_rows[own]
        ddcm_caps = ddcm_caps[own]
        if ddcm_rows.size:
            cand_duty = self._duties[self.duty_idx[ddcm_rows] + 1]
            fi = self.freq_idx[ddcm_rows]
            pred = self._predicted_power(ddcm_rows, self._volt_table[fi],
                                         self._ladder[fi], cand_duty)
            ok = pred <= ddcm_caps
            up = ddcm_rows[ok]
            if up.size:
                new_duty = self.duty_idx[up] + 1
                self.duty_idx[up] = new_duty
                undo = up[self._duties[new_duty] >= 1.0]
                self.fw_ddcm[undo] = False
        # Ladder climb (turbo included) at full duty.
        climb = cool[~throttled]
        climb_caps = cap_u[~throttled]
        room = self.freq_idx[climb] + 1 < len(self._ladder)
        climb = climb[room]
        climb_caps = climb_caps[room]
        if climb.size:
            fi = self.freq_idx[climb] + 1
            cand_freq = self._ladder[fi]
            pred = self._predicted_power(
                climb, self._volt_table[fi], cand_freq,
                self._duties[self.duty_idx[climb]])
            ok = (cand_freq <= self.freq_limit[climb]) & (pred <= climb_caps)
            self.freq_idx[climb[ok]] = fi[ok]

    def _monitor_tick(self, rows: np.ndarray) -> None:
        """ProgressMonitor._tick per row: drain due bus messages, append
        one rate sample (sum order = delivery order, from int 0)."""
        interval = self.interval
        for slot in rows:
            slot = int(slot)
            now = float(self.now[slot])
            queue = self.pending[slot]
            limit = now + _TIMER_EPS
            total = 0
            count = 0
            while queue and queue[0][0] <= limit:
                total = total + queue.popleft()[1].value
                count += 1
            self.mon_events[slot] += count
            self.mon_series[slot].append(now, total / interval)

    def _policy_tick(self, rows: np.ndarray) -> None:
        """BudgetTrackingPolicy._tick per row: apply budget changes
        through the (emulated) MSR write path, then record the raw cap."""
        for slot in rows:
            slot = int(slot)
            budget = self.pol_budget[slot]
            kind, applied = self.pol_applied[slot]
            if kind == "unset" or budget != applied:
                if budget is None:
                    # remove_pkg_power_limit: PL1 disabled -> firmware
                    # stops capping and releases the uncore.
                    self.fw_enabled[slot] = False
                    self.uncore_scale[slot] = 1.0
                else:
                    watts, window = self._quantized_limit(budget)
                    if watts <= 0:
                        raise ConfigurationError(
                            f"power limit must be positive, got {watts}")
                    self.fw_limit[slot] = watts
                    self.fw_enabled[slot] = True
                    self.fw_window[slot] = window
                self.pol_applied[slot] = ("set", budget)
            self.cap_series[slot].append(
                float(self.now[slot]),
                self._tdp_msr if budget is None else budget)

    def _quantized_limit(self, watts: float) -> tuple[float, float]:
        """What the firmware actually receives for a requested PL1: the
        encode/merge/decode round trip through MSR_PKG_POWER_LIMIT
        quantizes watts to the power unit and snaps the window to its
        7-bit representation."""
        cached = self._limit_cache.get(watts)
        if cached is None:
            value = encode_power_limit(
                PowerLimit(watts=watts, enabled=True, clamped=True,
                           window=_PL1_WINDOW),
                units=self._units)
            pl1, _pl2, _locked = decode_power_limit(value & _PL1_MASK,
                                                    units=self._units)
            cached = (pl1.watts, pl1.window)
            self._limit_cache[watts] = cached
        return cached

    # ------------------------------------------------------------------
    # Per-slot state transfer (flat format; repro.vector.checkpoint maps
    # it to/from NodeCheckpoint)
    # ------------------------------------------------------------------

    def snapshot(self, slot: int) -> dict:
        """Every _SOA_FIELDS entry for one node, as plain Python data
        (generators/series as their own snapshot payloads)."""
        i = slot
        return {
            "now": float(self.now[i]),
            "pkg_energy": float(self.pkg_energy[i]),
            "dram_energy": float(self.dram_energy[i]),
            "uncore_scale": float(self.uncore_scale[i]),
            "freq_idx": int(self.freq_idx[i]),
            "duty_idx": int(self.duty_idx[i]),
            "freq_limit": float(self.freq_limit[i]),
            "c_dyn": float(self.c_dyn[i]),
            "leak": float(self.leak[i]),
            "energy_mark": float(self.energy_mark[i]),
            "started": bool(self.started[i]),
            "wstatus": [int(x) for x in self.wstatus[i]],
            "frac": [float(x) for x in self.frac[i]],
            "rate": [float(x) for x in self.rate[i]],
            "w_cycles": [float(x) for x in self.w_cycles[i]],
            "w_bytes": [float(x) for x in self.w_bytes[i]],
            "w_ins": [float(x) for x in self.w_ins[i]],
            "w_miss": [float(x) for x in self.w_miss[i]],
            "core_mode": [int(x) for x in self.core_mode[i]],
            "core_cf": [float(x) for x in self.core_cf[i]],
            "core_br": [float(x) for x in self.core_br[i]],
            "ctr_ins": [float(x) for x in self.ctr_ins[i]],
            "ctr_cyc": [float(x) for x in self.ctr_cyc[i]],
            "ctr_l3": [float(x) for x in self.ctr_l3[i]],
            "queued_pub": float(self.queued_pub[i]),
            "p_idx": int(self.p_idx[i]),
            "it": int(self.it[i]),
            "t_rapl": float(self.t_rapl[i]),
            "t_mon": float(self.t_mon[i]),
            "t_pol": float(self.t_pol[i]),
            "fw_limit": float(self.fw_limit[i]),
            "fw_limit2": float(self.fw_limit2[i]),
            "fw_window": float(self.fw_window[i]),
            "fw_avgw": float(self.fw_avgw[i]),
            "fw_enabled": bool(self.fw_enabled[i]),
            "fw_ddcm": bool(self.fw_ddcm[i]),
            "fw_last_energy": float(self.fw_last_energy[i]),
            "fw_last_time": float(self.fw_last_time[i]),
            "mon_events": int(self.mon_events[i]),
            "bus_published": int(self.bus_published[i]),
            "bus_dropped": int(self.bus_dropped[i]),
            "bus_overflowed": int(self.bus_overflowed[i]),
            "ls_package": float(self.ls_package[i]),
            "ls_cores": float(self.ls_cores[i]),
            "ls_uncore": float(self.ls_uncore[i]),
            "ls_dram": float(self.ls_dram[i]),
            "ls_valid": bool(self.ls_valid[i]),
            "rngs": [g.bit_generator.state for g in self.rngs[i]],
            "shared_rng": (None if self.shared_rng[i] is None
                           else self.shared_rng[i].bit_generator.state),
            "bus_rng": self.bus_rng[i].bit_generator.state,
            "pending": list(self.pending[i]),
            "arrivals": list(self.arrivals[i]),
            "mon_series": self.mon_series[i].snapshot(),
            "cap_series": self.cap_series[i].snapshot(),
            "pol_budget": self.pol_budget[i],
            "pol_applied": self.pol_applied[i],
        }

    def restore(self, slot: int, state: dict) -> None:
        """Install a :meth:`snapshot` payload into one slot."""
        i = slot
        self.now[i] = state["now"]
        self.pkg_energy[i] = state["pkg_energy"]
        self.dram_energy[i] = state["dram_energy"]
        self.uncore_scale[i] = state["uncore_scale"]
        self.freq_idx[i] = state["freq_idx"]
        self.duty_idx[i] = state["duty_idx"]
        self.freq_limit[i] = state["freq_limit"]
        self.c_dyn[i] = state["c_dyn"]
        self.leak[i] = state["leak"]
        self.energy_mark[i] = state["energy_mark"]
        self.started[i] = state["started"]
        self.wstatus[i] = state["wstatus"]
        self.frac[i] = state["frac"]
        self.rate[i] = state["rate"]
        self.w_cycles[i] = state["w_cycles"]
        self.w_bytes[i] = state["w_bytes"]
        self.w_ins[i] = state["w_ins"]
        self.w_miss[i] = state["w_miss"]
        self.core_mode[i] = state["core_mode"]
        self.core_cf[i] = state["core_cf"]
        self.core_br[i] = state["core_br"]
        self.ctr_ins[i] = state["ctr_ins"]
        self.ctr_cyc[i] = state["ctr_cyc"]
        self.ctr_l3[i] = state["ctr_l3"]
        self.queued_pub[i] = state["queued_pub"]
        self.p_idx[i] = state["p_idx"]
        self.it[i] = state["it"]
        self.t_rapl[i] = state["t_rapl"]
        self.t_mon[i] = state["t_mon"]
        self.t_pol[i] = state["t_pol"]
        self.fw_limit[i] = state["fw_limit"]
        self.fw_limit2[i] = state["fw_limit2"]
        self.fw_window[i] = state["fw_window"]
        self.fw_avgw[i] = state["fw_avgw"]
        self.fw_enabled[i] = state["fw_enabled"]
        self.fw_ddcm[i] = state["fw_ddcm"]
        self.fw_last_energy[i] = state["fw_last_energy"]
        self.fw_last_time[i] = state["fw_last_time"]
        self.mon_events[i] = state["mon_events"]
        self.bus_published[i] = state["bus_published"]
        self.bus_dropped[i] = state["bus_dropped"]
        self.bus_overflowed[i] = state["bus_overflowed"]
        self.ls_package[i] = state["ls_package"]
        self.ls_cores[i] = state["ls_cores"]
        self.ls_uncore[i] = state["ls_uncore"]
        self.ls_dram[i] = state["ls_dram"]
        self.ls_valid[i] = state["ls_valid"]
        self.rngs[i] = [_generator_from(s) for s in state["rngs"]]
        self.shared_rng[i] = (None if state["shared_rng"] is None
                              else _generator_from(state["shared_rng"]))
        self.bus_rng[i] = _generator_from(state["bus_rng"])
        self.pending[i] = deque(tuple(entry) for entry in state["pending"])
        self.arrivals[i] = list(state["arrivals"])
        series = TimeSeries(self._mon_names[i])
        series.restore(state["mon_series"])
        self.mon_series[i] = series
        caps = TimeSeries("budget-cap")
        caps.restore(state["cap_series"])
        self.cap_series[i] = caps
        self.pol_budget[i] = state["pol_budget"]
        self.pol_applied[i] = tuple(state["pol_applied"])


def _generator_from(state: dict) -> np.random.Generator:
    # The fresh generator's state is fully replaced below; no OS entropy
    # reaches any result.
    gen = np.random.default_rng()  # repro-lint: disable=det-unseeded-rng
    if gen.bit_generator.state["bit_generator"] != state.get("bit_generator"):
        raise ConfigurationError(
            f"unsupported bit generator in RNG state: "
            f"{state.get('bit_generator')!r}")
    gen.bit_generator.state = state
    return gen
