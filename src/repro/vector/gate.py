"""Eligibility gate and uniform group profile for the vector engine.

The structure-of-arrays fast path (:class:`repro.vector.engine.VectorGroup`)
batches many nodes into one numpy step, which is only bit-identical to the
object engine when every batched node runs the *same* shape of stack: the
default budget-controller wiring (firmware + libmsr + bus + one 1 Hz
monitor + tracking policy), one of the regular SPMD applications, and a
worker count small enough that numpy's reductions stay sequential.

:func:`supports_fast_path` answers "can this spec run vectorized?" with a
human-readable refusal reason (``None`` means eligible); ineligible specs
fall back to the object :class:`~repro.cluster.node_instance.NodeInstance`
transparently. :func:`profile_key` buckets eligible specs into groups that
may share one :class:`GroupProfile` — everything except the seed, the
stack name and the per-node process-variation config fields must match.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.apps import build as build_app
from repro.apps.base import AppSpec, SyntheticApp
from repro.exceptions import ConfigurationError
from repro.hardware.config import NodeConfig
from repro.stack.spec import BUDGET, StackSpec

__all__ = [
    "FAST_APPS",
    "MAX_VECTOR_WORKERS",
    "PER_NODE_CFG_FIELDS",
    "GroupProfile",
    "supports_fast_path",
    "profile_key",
    "build_profile",
    "member_seed",
]

#: Applications with the plain phase/iteration SPMD body the vector engine
#: replicates. The irregular codes (candle, hacc, imbalance, nek5000,
#: urban) use bespoke bodies/components and take the object fallback.
FAST_APPS = ("lammps", "amg", "qmcpack", "stream", "openmc")

#: numpy's pairwise summation only degenerates to a strict sequential fold
#: below 8 elements; with more workers per node the vectorized reductions
#: would reassociate and break bit-parity with the object engine.
MAX_VECTOR_WORKERS = 7

#: NodeConfig fields allowed to differ between members of one group (the
#: cluster's process-variation perturbation touches exactly these).
PER_NODE_CFG_FIELDS = ("c_dyn", "leak_per_volt")

_DEFAULT_N_WORKERS = 24  # SyntheticApp's default


def _spec_cfg(spec: StackSpec) -> NodeConfig:
    return spec.cfg if spec.cfg is not None else NodeConfig()


def supports_fast_path(spec: object) -> str | None:
    """Why ``spec`` cannot run on the vector fast path (None = it can).

    The checks mirror exactly what :class:`repro.vector.engine.VectorGroup`
    models: budget controller, no userspace pins, stock firmware, default
    topics, no node-state tap, a regular SPMD app, and a worker count
    below numpy's pairwise-summation threshold.
    """
    if not isinstance(spec, StackSpec):
        return "not a StackSpec (mid-run checkpoints restore separately)"
    if spec.controller != BUDGET:
        return f"controller {spec.controller!r} is not the budget policy"
    if spec.initial_budget is not None:
        return "initial_budget applies a cap before the first tick"
    if spec.schedule is not None:
        return "cap schedules need the daemon controller"
    if spec.dvfs_freq is not None or spec.duty is not None:
        return "userspace frequency/duty pins are not vectorized"
    if spec.firmware_kwargs:
        return "non-default firmware parameters are not vectorized"
    if spec.topics is not None:
        return "custom topic sets are not vectorized"
    if spec.sample_node_state:
        return "the node-state sampling tap is not vectorized"
    if spec.app_name not in FAST_APPS:
        return f"app {spec.app_name!r} has an irregular body"
    kwargs = dict(spec.app_kwargs or {})
    if "cfg" in kwargs:
        return "explicit cfg in app_kwargs shadows the node config"
    n_workers = kwargs.get("n_workers", _DEFAULT_N_WORKERS)
    if not isinstance(n_workers, int) or not 1 <= n_workers <= MAX_VECTOR_WORKERS:
        return (f"n_workers={n_workers!r} outside 1..{MAX_VECTOR_WORKERS} "
                "(numpy reductions reassociate at >= 8 elements)")
    try:
        hash(tuple(sorted(kwargs.items())))
    except TypeError:
        return "app_kwargs contains unhashable values"
    return None


def profile_key(spec: StackSpec) -> tuple:
    """Grouping key: eligible specs with equal keys share one profile.

    Seed and stack name vary per node; the process-variation config
    fields (:data:`PER_NODE_CFG_FIELDS`) become per-node arrays.
    """
    kwargs = dict(spec.app_kwargs or {})
    kwargs.pop("seed", None)
    cfg = _spec_cfg(spec)
    cfg_items = tuple(
        (f.name, getattr(cfg, f.name))
        for f in fields(NodeConfig) if f.name not in PER_NODE_CFG_FIELDS
    )
    return (spec.app_name, tuple(sorted(kwargs.items())),
            spec.monitor_interval, cfg_items)


def member_seed(spec: StackSpec) -> int:
    """The app seed a stack built from ``spec`` would use (an explicit
    ``app_kwargs['seed']`` wins over the stack seed, exactly as
    :meth:`~repro.stack.spec.StackSpec.resolved_app_kwargs` resolves it)."""
    kwargs = dict(spec.app_kwargs or {})
    return kwargs.get("seed", spec.seed)


@dataclass(frozen=True)
class GroupProfile:
    """Everything shared by all members of one vector group.

    Phase parameters are plain tuples (one entry per phase of the app's
    spec); per-node quantities live in the group's arrays.
    """

    app_name: str
    app_spec: AppSpec          #: template AppSpec every member must equal
    parallelism: str           #: "mpi" or "openmp" (task naming)
    topic: str                 #: the single monitored progress topic
    drop_prob: float           #: bus transport loss probability
    n_workers: int
    monitor_interval: float
    cfg: NodeConfig            #: template config (per-node fields overridden)
    # Per-phase kernel/iteration parameters.
    ph_cycles: tuple[float, ...]
    ph_bpc: tuple[float, ...]
    ph_ipc: tuple[float, ...]
    ph_mpo: tuple[float | None, ...]
    ph_jitter: tuple[float, ...]
    ph_shared_jitter: tuple[float, ...]
    ph_iterations: tuple[int, ...]
    ph_ppi: tuple[float, ...]
    ph_publish: tuple[bool, ...]

    @property
    def n_phases(self) -> int:
        return len(self.ph_cycles)

    def task_name(self, wid: int) -> str:
        kind = "rank" if self.parallelism == "mpi" else "thr"
        return f"{self.app_name}:{kind}{wid}"


def build_profile(spec: StackSpec) -> GroupProfile:
    """Build the shared profile from one (eligible) member spec."""
    reason = supports_fast_path(spec)
    if reason is not None:
        raise ConfigurationError(f"spec is not vectorizable: {reason}")
    cfg = _spec_cfg(spec)
    app = build_app(spec.app_name, **spec.resolved_app_kwargs(cfg))
    phases = app.spec.phases
    return GroupProfile(
        app_name=app.name,
        app_spec=app.spec,
        parallelism=app.spec.parallelism,
        topic=app.topic,
        drop_prob=app.spec.transport_drop_prob,
        n_workers=app.n_workers,
        monitor_interval=spec.monitor_interval,
        cfg=cfg,
        ph_cycles=tuple(p.kernel.cycles for p in phases),
        ph_bpc=tuple(p.kernel.bytes_per_cycle for p in phases),
        ph_ipc=tuple(p.kernel.ipc for p in phases),
        ph_mpo=tuple(p.kernel.misses_per_instruction for p in phases),
        ph_jitter=tuple(p.kernel.jitter for p in phases),
        ph_shared_jitter=tuple(p.kernel.shared_jitter for p in phases),
        ph_iterations=tuple(p.iterations for p in phases),
        ph_ppi=tuple(p.progress_per_iteration for p in phases),
        ph_publish=tuple(p.publish for p in phases),
    )


def check_member(profile: GroupProfile, spec: StackSpec) -> SyntheticApp:
    """Verify ``spec`` builds the same application the profile describes
    (phases are cfg-calibrated, so this guards against a config drift the
    grouping key missed). Returns the freshly built app for inspection."""
    cfg = _spec_cfg(spec)
    app = build_app(spec.app_name, **spec.resolved_app_kwargs(cfg))
    if app.spec != profile.app_spec:
        raise ConfigurationError(
            f"node spec {spec.name!r} builds a different {spec.app_name!r} "
            "application than its group profile")
    if app.n_workers != profile.n_workers:
        raise ConfigurationError("worker count differs from group profile")
    return app
