"""Host-side seam between the cluster layers and the vector engine.

:class:`VectorEngine` owns a set of nodes the way a shard worker (or the
serial :class:`~repro.cluster.sharding.ShardedLockstep`) does, but routes
every eligible :class:`~repro.stack.spec.StackSpec` into shared
:class:`~repro.vector.engine.VectorGroup` arrays and advances each group
with ONE batched call per epoch. Ineligible specs and foreign
checkpoints fall back to ordinary object
:class:`~repro.cluster.node_instance.NodeInstance`\\ s inside the same
host, so callers never need to know which nodes took which path.

:class:`VectorNodeView` exposes one vectorized slot through the
NodeInstance surface (``now``, ``receive_budget``, ``advance``,
``monitor.series``, ``node.pkg_energy`` ...) so telemetry helpers, tests
and the serial ``local_nodes()`` accessor keep working unchanged.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import CheckpointError, ConfigurationError
from repro.stack.spec import StackSpec
from repro.vector.engine import VectorGroup
from repro.vector.gate import build_profile, profile_key, supports_fast_path

__all__ = ["VectorEngine", "VectorNodeView"]


class _NodeShim:
    """The slice of SimulatedNode telemetry the cluster layers read."""

    __slots__ = ("_group", "_slot")

    def __init__(self, group: VectorGroup, slot: int) -> None:
        self._group = group
        self._slot = slot

    @property
    def pkg_energy(self) -> float:
        return float(self._group.pkg_energy[self._slot])

    @property
    def dram_energy(self) -> float:
        return float(self._group.dram_energy[self._slot])

    @property
    def frequency(self) -> float:
        g = self._group
        return float(g.cfg.freq_ladder[int(g.freq_idx[self._slot])])

    @property
    def uncore_scale(self) -> float:
        return float(self._group.uncore_scale[self._slot])


class _MonitorShim:
    """The slice of ProgressMonitor the cluster layers read."""

    __slots__ = ("_group", "_slot")

    def __init__(self, group: VectorGroup, slot: int) -> None:
        self._group = group
        self._slot = slot

    @property
    def series(self):
        return self._group.mon_series[self._slot]

    @property
    def interval(self) -> float:
        return self._group.interval

    @property
    def events_seen(self) -> int:
        return int(self._group.mon_events[self._slot])


class VectorNodeView:
    """One vectorized node through the NodeInstance surface."""

    def __init__(self, group: VectorGroup, slot: int, node_id: int,
                 spec: StackSpec) -> None:
        self.group = group
        self.slot = slot
        self.node_id = node_id
        self.spec = spec
        self.node = _NodeShim(group, slot)
        self.monitor = _MonitorShim(group, slot)

    @property
    def now(self) -> float:
        return float(self.group.now[self.slot])

    def receive_budget(self, watts: float | None) -> None:
        self.group.receive_budget(self.slot, watts)

    def advance(self, until: float) -> None:
        if until < self.now:
            raise ConfigurationError(
                f"node {self.node_id}: cannot rewind to {until} "
                f"from {self.now}")
        self.group.advance(np.asarray([self.slot]), np.asarray([until]))

    def recent_rate(self, window: float = 5.0) -> float:
        series = self.monitor.series
        if series.is_empty():
            return 0.0
        recent = series.window(self.now - window, self.now + 1e-9)
        if recent.is_empty():
            return 0.0
        return float(recent.values.mean())

    def cumulative_progress(self) -> float:
        series = self.monitor.series
        if series.is_empty():
            return 0.0
        return float(series.values.sum()) * self.monitor.interval

    def epoch_energy(self) -> float:
        return self.group.epoch_energy(self.slot)

    def snapshot(self) -> dict:
        """A NodeInstance-format checkpoint (restorable by either
        engine); see :mod:`repro.vector.checkpoint`."""
        from repro.vector.checkpoint import export_checkpoint

        return export_checkpoint(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"VectorNodeView(id={self.node_id}, t={self.now:.1f}s, "
                f"f={self.node.frequency / 1e9:.1f}GHz)")


class VectorEngine:
    """A node host that batches eligible nodes into vector groups.

    The per-epoch seam is :meth:`step`: budgets go in with the step
    requests, trailing rates and epoch energy come back — one batched
    array advance per group instead of one engine loop per node.
    """

    def __init__(self) -> None:
        self._groups: dict[tuple, VectorGroup] = {}
        self._views: dict[int, VectorNodeView] = {}
        self._fallback: dict = {}

    # -- membership ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._views) + len(self._fallback)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._views or node_id in self._fallback

    @property
    def vector_node_ids(self) -> list[int]:
        """Nodes on the fast path (the rest run as object fallbacks)."""
        return list(self._views)

    @property
    def fallback_node_ids(self) -> list[int]:
        return list(self._fallback)

    def build(self, items: Sequence[tuple[int, object]]) -> None:
        """Adopt ``(node_id, StackSpec | checkpoint)`` pairs.

        Eligible specs with equal profiles batch into one new
        :class:`VectorGroup` per call; everything else (ineligible
        specs, mid-run checkpoints the vector importer rejects) becomes
        an object NodeInstance.
        """
        from repro.cluster.sharding import _build_node
        from repro.vector.checkpoint import try_import_checkpoint

        staged: dict[tuple, list[tuple[int, StackSpec]]] = {}
        for node_id, item in items:
            if node_id in self:
                raise ConfigurationError(f"node {node_id} already exists")
            if isinstance(item, StackSpec) and \
                    supports_fast_path(item) is None:
                staged.setdefault(profile_key(item), []).append(
                    (node_id, item))
                continue
            if isinstance(item, dict):
                imported = try_import_checkpoint(self, node_id, item)
                if imported is not None:
                    self._views[node_id] = imported
                    continue
            self._fallback[node_id] = _build_node(node_id, item)
        for key, members in staged.items():
            group = VectorGroup(build_profile(members[0][1]), members)
            self._groups[key + (min(nid for nid, _ in members),)] = group
            for node_id, spec in members:
                self._views[node_id] = VectorNodeView(
                    group, group.slot_of(node_id), node_id, spec)

    def adopt_group(self, key: tuple, group: VectorGroup,
                    node_id: int, spec: StackSpec) -> VectorNodeView:
        """Register a checkpoint-restored slot (checkpoint importer)."""
        self._groups[key] = group
        view = VectorNodeView(group, group.slot_of(node_id), node_id, spec)
        return view

    def node(self, node_id: int):
        """The live node — a :class:`VectorNodeView` or a fallback
        NodeInstance, both NodeInstance-shaped."""
        view = self._views.get(node_id)
        if view is not None:
            return view
        return self._fallback[node_id]

    def remove(self, node_ids: Sequence[int]) -> None:
        for node_id in node_ids:
            if node_id in self._views:
                del self._views[node_id]
            else:
                del self._fallback[node_id]

    # -- the per-epoch seam --------------------------------------------

    def step(self, requests: Sequence) -> list:
        """Advance every requested node one epoch (budgets applied
        first), batching all same-group nodes into one array advance.
        Results come back in request order."""
        from repro.cluster.sharding import StepResult, step_node

        batches: dict[int, tuple[VectorGroup, list[int], list[float]]] = {}
        for req in requests:
            view = self._views.get(req.node_id)
            if view is None:
                continue
            if req.set_budget:
                view.group.receive_budget(view.slot, req.budget)
            group = view.group
            batch = batches.get(id(group))
            if batch is None:
                batch = batches[id(group)] = (group, [], [])
            batch[1].append(view.slot)
            batch[2].append(req.target)
        for group, slots, targets in batches.values():
            group.advance(np.asarray(slots, dtype=np.intp),
                          np.asarray(targets, dtype=float))
        results = []
        for req in requests:
            view = self._views.get(req.node_id)
            if view is None:
                results.append(step_node(self._fallback[req.node_id], req))
                continue
            results.append(StepResult(
                node_id=req.node_id,
                now=view.now,
                energy=view.epoch_energy(),
                cumulative=view.cumulative_progress(),
                rates={w: self._guarded_rate(view, w) for w in req.windows},
            ))
        return results

    # -- telemetry ------------------------------------------------------

    @staticmethod
    def _guarded_rate(view: VectorNodeView, window: float) -> float:
        if view.monitor.series.is_empty():
            return 0.0
        return view.recent_rate(window=window)

    def rate(self, node_id: int, window: float) -> float:
        from repro.cluster.sharding import node_rate

        view = self._views.get(node_id)
        if view is not None:
            return self._guarded_rate(view, window)
        return node_rate(self._fallback[node_id], window)

    def telemetry(self, node_id: int):
        from repro.cluster.sharding import NodeTelemetry, _node_telemetry

        view = self._views.get(node_id)
        if view is None:
            return _node_telemetry(self._fallback[node_id])
        return NodeTelemetry(
            node_id=node_id,
            now=view.now,
            progress=view.monitor.series.copy(),
            interval=view.monitor.interval,
            pkg_energy=view.node.pkg_energy,
            frequency=view.node.frequency,
        )

    def checkpoint(self, node_id: int) -> dict:
        view = self._views.get(node_id)
        if view is not None:
            return view.snapshot()
        return self._fallback[node_id].snapshot()
