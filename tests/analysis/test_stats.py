"""Unit and property tests for repeat-measurement statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    bootstrap_ci,
    mean_confidence_interval,
    summarize_repeats,
)
from repro.exceptions import ConfigurationError


class TestMeanCI:
    def test_single_sample_degenerates(self):
        assert mean_confidence_interval([5.0]) == (5.0, 5.0)

    def test_zero_variance_degenerates(self):
        assert mean_confidence_interval([3.0, 3.0, 3.0]) == (3.0, 3.0)

    def test_contains_mean(self):
        lo, hi = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert lo < 2.5 < hi

    def test_wider_at_higher_confidence(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        lo95, hi95 = mean_confidence_interval(data, 0.95)
        lo99, hi99 = mean_confidence_interval(data, 0.99)
        assert hi99 - lo99 > hi95 - lo95

    def test_known_value(self):
        # n=5, mean=3, sem=sqrt(2.5)/sqrt(5); t(0.975, 4)=2.7764
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        lo, hi = mean_confidence_interval(data)
        sem = np.sqrt(2.5 / 5)
        assert hi - 3.0 == pytest.approx(2.7764 * sem, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([])
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([1.0], confidence=1.5)
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([float("nan")])


class TestBootstrapCI:
    def test_contains_mean_for_reasonable_data(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 1.0, size=30)
        lo, hi = bootstrap_ci(data, seed=1)
        assert lo < data.mean() < hi

    def test_deterministic_per_seed(self):
        data = [1.0, 5.0, 2.0, 8.0]
        assert bootstrap_ci(data, seed=3) == bootstrap_ci(data, seed=3)

    def test_single_sample(self):
        assert bootstrap_ci([7.0]) == (7.0, 7.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0, 2.0], n_resamples=0)


class TestSummary:
    def test_fields(self):
        s = summarize_repeats([2.0, 4.0, 6.0])
        assert s.n == 3
        assert s.mean == pytest.approx(4.0)
        assert s.std == pytest.approx(2.0)
        assert s.ci_low < 4.0 < s.ci_high

    def test_relative_halfwidth(self):
        s = summarize_repeats([2.0, 4.0, 6.0])
        assert s.relative_halfwidth() == pytest.approx(
            s.ci_halfwidth / 4.0
        )

    def test_relative_halfwidth_zero_mean(self):
        s = summarize_repeats([-1.0, 1.0])
        with pytest.raises(ConfigurationError):
            s.relative_halfwidth()


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2,
                max_size=40))
@settings(max_examples=60)
def test_t_interval_brackets_the_sample_mean(samples):
    lo, hi = mean_confidence_interval(samples)
    mean = float(np.mean(samples))
    assert lo <= mean + 1e-9
    assert hi >= mean - 1e-9
