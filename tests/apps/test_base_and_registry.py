"""Unit tests for the app base class and registry."""

import pytest

from repro.apps import available, build, get_spec
from repro.apps.base import AppSpec, SyntheticApp
from repro.apps.kernels import KernelSpec, PhaseSpec
from repro.core.categories import Category, OnlineMetric
from repro.exceptions import ConfigurationError
from repro.hardware import SimulatedNode
from repro.runtime.engine import Engine


def tiny_spec(parallelism="openmp", phases=None):
    return AppSpec(
        name="toy",
        description="toy app",
        category=Category.CATEGORY_1,
        metric=OnlineMetric("Iterations per second", "it/s"),
        parallelism=parallelism,
        phases=phases or (
            PhaseSpec("main", KernelSpec(cycles=0.33e9), iterations=4),
        ),
    )


class TestAppSpec:
    def test_rejects_unknown_parallelism(self):
        with pytest.raises(ConfigurationError):
            tiny_spec(parallelism="cuda")

    def test_rejects_empty_phases(self):
        with pytest.raises(ConfigurationError):
            AppSpec(name="x", description="", category=Category.CATEGORY_1,
                    metric=None, parallelism="mpi", phases=())

    def test_default_category_label(self):
        assert tiny_spec().category_label == "1"


class TestSyntheticApp:
    def test_topic_naming(self):
        app = SyntheticApp(tiny_spec())
        assert app.topic == "progress/toy"

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            SyntheticApp(tiny_spec(), n_workers=0)

    @pytest.mark.parametrize("parallelism", ["openmp", "mpi"])
    def test_launch_and_run_to_completion(self, parallelism):
        node = SimulatedNode()
        engine = Engine(node)
        app = SyntheticApp(tiny_spec(parallelism), n_workers=4)
        events = []
        engine.on_publish(lambda t, topic, v: events.append((t, topic, v)))
        tasks = app.launch(engine)
        assert len(tasks) == 4
        engine.run()
        assert engine.all_done()
        # only worker 0 publishes, once per iteration
        assert len(events) == 4
        assert all(topic == "progress/toy" for _, topic, _ in events)

    def test_core_offset_launch(self):
        node = SimulatedNode()
        engine = Engine(node)
        app = SyntheticApp(tiny_spec(), n_workers=4)
        tasks = app.launch(engine, core_offset=8)
        assert [t.core_id for t in tasks] == [8, 9, 10, 11]

    def test_same_seed_reproducible(self):
        def run(seed):
            node = SimulatedNode()
            engine = Engine(node)
            spec = tiny_spec()
            spec = AppSpec(**{**spec.__dict__,
                              "phases": (PhaseSpec(
                                  "main",
                                  KernelSpec(cycles=0.33e9, jitter=0.1),
                                  iterations=5),)})
            app = SyntheticApp(spec, n_workers=2, seed=seed)
            app.launch(engine)
            return engine.run()

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_total_iterations(self):
        app = SyntheticApp(tiny_spec())
        assert app.total_iterations() == 4

    def test_expected_duration(self):
        app = SyntheticApp(tiny_spec())
        # 4 iterations of 0.33e9 cycles at 3.3 GHz = 0.4 s
        assert app.expected_duration(SimulatedNode().cfg) == pytest.approx(0.4)


class TestRegistry:
    def test_all_paper_apps_available(self):
        assert set(available()) == {
            "lammps", "amg", "qmcpack", "stream", "openmc", "candle",
            "imbalance", "hacc", "nek5000", "urban",
        }

    def test_build_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            build("fortnite")

    def test_build_forwards_kwargs(self):
        app = build("lammps", n_steps=7, n_workers=3)
        assert app.total_iterations() == 7
        assert app.n_workers == 3

    def test_get_spec(self):
        spec = get_spec("stream")
        assert spec.name == "stream"
        assert spec.resource_bound == "memory bandwidth"

    @pytest.mark.parametrize("name", ["lammps", "amg", "qmcpack", "stream",
                                      "openmc", "candle", "imbalance",
                                      "hacc", "nek5000", "urban"])
    def test_every_app_builds_with_defaults(self, name):
        app = build(name)
        assert app.name == name
        assert app.n_workers == 24
