"""Behavioural tests for the individual applications.

These run the apps on a small number of workers to keep them fast; the
full-scale (24-worker) behaviour is covered by the experiment tests.
"""

import numpy as np
import pytest

from repro.apps import build
from repro.exceptions import ConfigurationError
from repro.hardware import SimulatedNode
from repro.runtime.engine import Engine


def run_app(app, until=None, collect_topic=None):
    node = SimulatedNode()
    engine = Engine(node)
    events = []
    engine.on_publish(lambda t, topic, v: events.append((t, topic, v)))
    app.launch(engine)
    t = engine.run(until=until)
    if collect_topic is not None:
        events = [(t_, v) for t_, topic, v in events
                  if topic.startswith(collect_topic)]
    return node, t, events


class TestLammps:
    def test_timestep_rate_near_calibration(self):
        app = build("lammps", n_steps=40, n_workers=4)
        _, t, events = run_app(app, collect_topic="progress/lammps")
        assert len(events) == 40
        rate = 40 / t
        assert rate == pytest.approx(20.0, rel=0.05)

    def test_progress_units_are_atom_steps(self):
        app = build("lammps", n_steps=3, n_workers=2)
        _, _, events = run_app(app, collect_topic="progress/lammps")
        assert all(v == 40_000 for _, v in events)


class TestAmg:
    def test_setup_phase_publishes_nothing(self):
        app = build("amg", n_iterations=5, setup_iterations=3, n_workers=2)
        _, _, events = run_app(app, collect_topic="progress/amg")
        assert len(events) == 5

    def test_solve_rate_fluctuates(self):
        app = build("amg", n_iterations=40, setup_iterations=0,
                    n_workers=2, seed=5)
        _, _, events = run_app(app, collect_topic="progress/amg")
        gaps = np.diff([t for t, _ in events])
        assert np.std(gaps) / np.mean(gaps) > 0.02


class TestQmcpack:
    def test_three_phases_have_distinct_rates(self):
        app = build("qmcpack", vmc1_blocks=20, vmc2_blocks=20,
                    dmc_blocks=20, n_workers=2)
        _, _, events = run_app(app, collect_topic="progress/qmcpack")
        times = [t for t, _ in events]
        r1 = 20 / (times[19] - times[0])
        r2 = 20 / (times[39] - times[19])
        r3 = 20 / (times[59] - times[39])
        assert r1 > r2 > r3

    def test_dmc_only_build(self):
        app = build("qmcpack", vmc1_blocks=0, vmc2_blocks=0, dmc_blocks=5,
                    n_workers=2)
        assert app.total_iterations() == 5


class TestOpenmc:
    def test_batches_publish_particles(self):
        app = build("openmc", inactive_batches=2, active_batches=3,
                    n_workers=2)
        _, _, events = run_app(app, collect_topic="progress/openmc")
        assert len(events) == 5
        assert all(v == 100_000 for _, v in events)

    def test_inactive_phase_is_faster(self):
        app = build("openmc", inactive_batches=5, active_batches=5,
                    n_workers=2)
        _, _, events = run_app(app, collect_topic="progress/openmc")
        times = [t for t, _ in events]
        inactive = times[4] - times[0]
        active = times[9] - times[4]
        assert inactive < active

    def test_spec_carries_transport_drop(self):
        app = build("openmc")
        assert app.spec.transport_drop_prob > 0.0
        quiet = build("openmc", transport_drop_prob=0.0)
        assert quiet.spec.transport_drop_prob == 0.0


class TestCandle:
    def test_converges_before_max_epochs(self):
        app = build("candle", n_workers=2, seed=1)
        run_app(app)
        assert 1 <= app.epochs_run < app.max_epochs
        assert app.final_loss <= app.target_loss

    def test_epoch_count_depends_on_seed(self):
        counts = set()
        for seed in range(4):
            app = build("candle", n_workers=2, seed=seed, loss_noise=0.3)
            run_app(app)
            counts.add(app.epochs_run)
        assert len(counts) > 1

    def test_total_iterations_unpredictable(self):
        app = build("candle", n_workers=2)
        with pytest.raises(ConfigurationError):
            app.total_iterations()

    def test_max_epochs_bounds_divergent_training(self):
        app = build("candle", n_workers=2, target_loss=1e-9, max_epochs=5)
        run_app(app)
        assert app.epochs_run == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build("candle", loss_decay=1.5)
        with pytest.raises(ConfigurationError):
            build("candle", target_loss=0.0)


class TestImbalance:
    def test_equal_work_units(self):
        app = build("imbalance", equal=True, n_workers=4, n_iterations=2)
        assert app.total_work_units_per_iteration() == pytest.approx(4e6)

    def test_unequal_work_units_half(self):
        app = build("imbalance", equal=False, n_workers=4, n_iterations=2)
        # sum((r+1)/4 for r in 0..3) * 1e6 = 2.5e6
        assert app.total_work_units_per_iteration() == pytest.approx(2.5e6)

    def test_one_iteration_per_second(self):
        app = build("imbalance", equal=False, n_workers=4, n_iterations=3)
        _, t, _ = run_app(app)
        assert t == pytest.approx(3.0, rel=0.02)

    def test_unequal_burns_more_instructions(self):
        node_eq, t_eq, _ = run_app(build("imbalance", equal=True,
                                         n_workers=4, n_iterations=2))
        node_un, t_un, _ = run_app(build("imbalance", equal=False,
                                         n_workers=4, n_iterations=2))
        ins_eq = node_eq.counters.snapshot(t_eq).total("PAPI_TOT_INS")
        ins_un = node_un.counters.snapshot(t_un).total("PAPI_TOT_INS")
        assert ins_un > 5 * ins_eq

    def test_rejects_zero_iterations(self):
        with pytest.raises(ConfigurationError):
            build("imbalance", n_iterations=0)


class TestCategory3Apps:
    def test_hacc_timestep_rate_drifts(self):
        app = build("hacc", n_steps=30, n_workers=2, growth=0.05)
        _, _, events = run_app(app, collect_topic="progress/hacc")
        gaps = np.diff([t for t, _ in events])
        # later steps take visibly longer than early ones
        assert gaps[-3:].mean() > 1.3 * gaps[:3].mean()

    def test_nek_rate_wanders(self):
        app = build("nek5000", n_steps=60, n_workers=2, seed=2)
        _, _, events = run_app(app, collect_topic="progress/nek5000")
        gaps = np.diff([t for t, _ in events])
        assert gaps.max() / gaps.min() > 1.5

    def test_urban_components_run_concurrently(self):
        app = build("urban", duration_steps=2, n_workers=4)
        node, t, events = run_app(app, until=12.0)
        topics = {topic for _, topic, _ in events}
        assert "progress/urban/nek" in topics
        assert "progress/urban/eplus" in topics

    def test_urban_no_single_metric(self):
        app = build("urban", n_workers=4)
        assert app.spec.metric is None
        with pytest.raises(ConfigurationError):
            app.total_iterations()

    def test_urban_needs_two_workers(self):
        with pytest.raises(ConfigurationError):
            build("urban", n_workers=1)
