"""Tests for instrumentation intrusiveness and report batching."""

import pytest

from repro.apps import build
from repro.exceptions import ConfigurationError
from repro.hardware import SimulatedNode
from repro.runtime.engine import Engine


def run_app(app):
    node = SimulatedNode()
    engine = Engine(node)
    events = []
    engine.on_publish(lambda t, topic, v: events.append((t, v)))
    app.launch(engine)
    t = engine.run()
    return t, events


class TestReportBatching:
    def test_batches_reports(self):
        app = build("lammps", n_steps=10, n_workers=2)
        app.report_every = 5
        _, events = run_app(app)
        assert len(events) == 2
        assert all(v == 5 * 40_000 for _, v in events)

    def test_total_progress_conserved(self):
        for every in (1, 3, 7):
            app = build("lammps", n_steps=10, n_workers=2)
            app.report_every = every
            _, events = run_app(app)
            assert sum(v for _, v in events) == 10 * 40_000

    def test_trailing_partial_batch_flushed(self):
        app = build("lammps", n_steps=10, n_workers=2)
        app.report_every = 4
        _, events = run_app(app)
        assert [v for _, v in events] == [160_000, 160_000, 80_000]

    def test_rejects_bad_report_every(self):
        app = build("lammps", n_steps=4, n_workers=2)
        app.report_every = 0
        node = SimulatedNode()
        engine = Engine(node)
        app.launch(engine)
        with pytest.raises(ConfigurationError):
            engine.run()


class TestPublishOverhead:
    def test_overhead_slows_execution(self):
        plain = build("lammps", n_steps=40, n_workers=2)
        t_plain, _ = run_app(plain)

        costly = build("lammps", n_steps=40, n_workers=2)
        costly.publish_overhead_cycles = 3.3e7  # 10 ms per report
        t_costly, _ = run_app(costly)
        # 40 reports x 10 ms ~ 0.4 s of pure instrumentation time
        assert t_costly == pytest.approx(t_plain + 40 * 0.01, rel=0.05)

    def test_batching_amortizes_overhead(self):
        costly = build("lammps", n_steps=40, n_workers=2)
        costly.publish_overhead_cycles = 3.3e7
        t_every, _ = run_app(costly)

        batched = build("lammps", n_steps=40, n_workers=2)
        batched.publish_overhead_cycles = 3.3e7
        batched.report_every = 20
        t_batched, _ = run_app(batched)
        assert t_batched < t_every - 0.3

    def test_zero_overhead_is_free(self):
        a = build("lammps", n_steps=20, n_workers=2)
        b = build("lammps", n_steps=20, n_workers=2)
        b.report_every = 10
        t_a, _ = run_app(a)
        t_b, _ = run_app(b)
        assert t_a == pytest.approx(t_b)

    def test_rejects_negative_overhead(self):
        app = build("lammps", n_steps=4, n_workers=2)
        app.publish_overhead_cycles = -1.0
        node = SimulatedNode()
        engine = Engine(node)
        app.launch(engine)
        with pytest.raises(ConfigurationError):
            engine.run()
