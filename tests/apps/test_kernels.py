"""Unit and property tests for work kernels and phases."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.kernels import KernelSpec, PhaseSpec, cycles_for_rate
from repro.exceptions import ConfigurationError
from repro.hardware.config import skylake_config


class TestKernelSpec:
    def test_rejects_nonpositive_cycles(self):
        with pytest.raises(ConfigurationError):
            KernelSpec(cycles=0.0)

    def test_rejects_negative_bpc(self):
        with pytest.raises(ConfigurationError):
            KernelSpec(cycles=1.0, bytes_per_cycle=-0.1)

    def test_rejects_nonpositive_ipc(self):
        with pytest.raises(ConfigurationError):
            KernelSpec(cycles=1.0, ipc=0.0)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ConfigurationError):
            KernelSpec(cycles=1.0, jitter=-0.5)

    def test_sample_no_jitter_is_exact(self):
        k = KernelSpec(cycles=1e8, bytes_per_cycle=0.5, ipc=2.0)
        w = k.sample(np.random.default_rng(0))
        assert w.cycles == 1e8
        assert w.bytes == 5e7
        assert w.ins == 2e8
        assert w.l3_misses is None

    def test_sample_explicit_mpo(self):
        k = KernelSpec(cycles=1e8, ipc=1.0, misses_per_instruction=1e-3)
        w = k.sample(np.random.default_rng(0))
        assert w.l3_misses == pytest.approx(1e5)

    def test_jitter_varies_samples(self):
        k = KernelSpec(cycles=1e8, jitter=0.1)
        rng = np.random.default_rng(0)
        sizes = {k.sample(rng).cycles for _ in range(10)}
        assert len(sizes) == 10

    def test_shared_factor_deterministic_per_rng_state(self):
        k = KernelSpec(cycles=1e8, shared_jitter=0.1)
        a = k.shared_factor(np.random.default_rng(42))
        b = k.shared_factor(np.random.default_rng(42))
        assert a == b

    def test_shared_factor_one_without_jitter(self):
        k = KernelSpec(cycles=1e8)
        assert k.shared_factor(np.random.default_rng(0)) == 1.0

    def test_beta_at(self):
        cfg = skylake_config()
        pure = KernelSpec(cycles=1e8)
        assert pure.beta_at(cfg) == pytest.approx(1.0)
        mixed = KernelSpec(cycles=1e8,
                           bytes_per_cycle=(0.5 / 0.5) * (12e9 / 3.3e9))
        assert mixed.beta_at(cfg) == pytest.approx(0.5)

    @given(jitter=st.floats(min_value=0.0, max_value=0.3),
           seed=st.integers(min_value=0, max_value=1000))
    def test_sample_scales_bytes_and_ins_together(self, jitter, seed):
        k = KernelSpec(cycles=1e8, bytes_per_cycle=0.7, ipc=1.3,
                       jitter=jitter)
        w = k.sample(np.random.default_rng(seed))
        assert w.bytes / w.cycles == pytest.approx(0.7)
        assert w.ins / w.cycles == pytest.approx(1.3)


class TestPhaseSpec:
    def test_rejects_negative_iterations(self):
        with pytest.raises(ConfigurationError):
            PhaseSpec("p", KernelSpec(cycles=1.0), iterations=-1)

    def test_rejects_negative_progress(self):
        with pytest.raises(ConfigurationError):
            PhaseSpec("p", KernelSpec(cycles=1.0), iterations=1,
                      progress_per_iteration=-1.0)


class TestCyclesForRate:
    def test_pure_compute(self):
        cfg = skylake_config()
        c = cycles_for_rate(10.0, 0.0, cfg)
        assert c == pytest.approx(cfg.f_nominal / 10.0)

    def test_mixed_rate_roundtrip(self):
        cfg = skylake_config()
        bpc = 1.5
        c = cycles_for_rate(4.0, bpc, cfg)
        t_iter = c / cfg.f_nominal + c * bpc / cfg.core_link_bandwidth
        assert 1.0 / t_iter == pytest.approx(4.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            cycles_for_rate(0.0, 0.0, skylake_config())
