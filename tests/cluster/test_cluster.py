"""Tests for the multi-node cluster simulation (extension)."""

import numpy as np
import pytest

pytestmark = pytest.mark.slow

from repro.cluster import (
    ClusterSimulation,
    NodeInstance,
    ProgressAwareRebalancer,
    UniformPowerPolicy,
    perturb_config,
)
from repro.exceptions import ConfigurationError
from repro.hardware.config import skylake_config

APP_KW = {"n_steps": 1_000_000, "n_workers": 8}


class TestVariability:
    def test_perturbs_power_coefficients(self):
        cfg = skylake_config()
        rng = np.random.default_rng(1)
        v = perturb_config(cfg, rng)
        assert v.c_dyn != cfg.c_dyn
        assert v.leak_per_volt != cfg.leak_per_volt
        # everything else untouched
        assert v.freq_ladder == cfg.freq_ladder
        assert v.mem_bandwidth == cfg.mem_bandwidth

    def test_zero_sigma_is_identity(self):
        cfg = skylake_config()
        v = perturb_config(cfg, np.random.default_rng(1), sigma_dynamic=0.0,
                           sigma_static=0.0)
        assert v.c_dyn == cfg.c_dyn
        assert v.leak_per_volt == cfg.leak_per_volt

    def test_deterministic_per_stream(self):
        cfg = skylake_config()
        a = perturb_config(cfg, np.random.default_rng(5))
        b = perturb_config(cfg, np.random.default_rng(5))
        assert a.c_dyn == b.c_dyn

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            perturb_config(skylake_config(), np.random.default_rng(0),
                           sigma_dynamic=-0.1)


class TestPolicies:
    def test_uniform_split(self):
        p = UniformPowerPolicy(300.0)
        assert p.allocate([1.0, 2.0, 3.0]) == [100.0, 100.0, 100.0]

    def test_uniform_rejects_no_nodes(self):
        with pytest.raises(ConfigurationError):
            UniformPowerPolicy(300.0).allocate([])

    def test_rebalancer_conserves_budget(self):
        p = ProgressAwareRebalancer(300.0)
        budgets = p.allocate([10.0, 8.0, 12.0])
        assert sum(budgets) == pytest.approx(300.0)

    def test_rebalancer_favours_slow_nodes(self):
        p = ProgressAwareRebalancer(300.0)
        budgets = p.allocate([10.0, 8.0, 12.0])
        # slowest node (index 1) gets the most, fastest the least
        assert budgets[1] > budgets[0] > budgets[2]

    def test_rebalancer_uniform_without_signal(self):
        p = ProgressAwareRebalancer(300.0)
        assert p.allocate([0.0, 0.0, 0.0]) == pytest.approx([100.0] * 3)

    @pytest.mark.parametrize("rates", [
        [float("nan"), 10.0, 12.0],
        [float("inf"), 10.0, 12.0],
        [-30.0, 10.0, 12.0],  # degenerate negative sum -> mean <= 0
    ])
    def test_rebalancer_uniform_on_corrupt_signal(self, rates):
        """Non-finite or degenerate rate samples (e.g. a monitor that has
        produced no window yet) must not poison the allocation."""
        p = ProgressAwareRebalancer(300.0)
        budgets = p.allocate(rates)
        assert budgets == pytest.approx([100.0] * 3)
        assert all(np.isfinite(budgets))

    def test_rebalancer_respects_floor(self):
        p = ProgressAwareRebalancer(150.0, min_node=45.0, gain=10.0)
        budgets = p.allocate([1.0, 100.0, 100.0])
        assert min(budgets) >= 45.0 - 1e-9

    def test_rebalancer_budget_below_floors_rejected(self):
        p = ProgressAwareRebalancer(100.0, min_node=45.0)
        with pytest.raises(ConfigurationError):
            p.allocate([1.0, 1.0, 1.0])

    def test_rebalancer_validation(self):
        with pytest.raises(ConfigurationError):
            ProgressAwareRebalancer(0.0)
        with pytest.raises(ConfigurationError):
            ProgressAwareRebalancer(100.0, min_node=50.0, max_node=40.0)
        with pytest.raises(ConfigurationError):
            ProgressAwareRebalancer(100.0, gain=0.0)


class TestNodeInstance:
    def test_advance_and_progress(self):
        inst = NodeInstance(0, skylake_config(), "lammps",
                            app_kwargs=APP_KW, seed=1)
        inst.advance(5.0)
        assert inst.now == pytest.approx(5.0)
        assert inst.recent_rate() > 0.0

    def test_budget_enforced(self):
        inst = NodeInstance(0, skylake_config(), "lammps",
                            app_kwargs={"n_steps": 1_000_000}, seed=1)
        inst.receive_budget(90.0)
        inst.advance(6.0)
        assert inst.node.frequency < inst.node.cfg.f_nominal

    def test_rewind_rejected(self):
        inst = NodeInstance(0, skylake_config(), "lammps",
                            app_kwargs=APP_KW, seed=1)
        inst.advance(2.0)
        with pytest.raises(ConfigurationError):
            inst.advance(1.0)

    def test_epoch_energy_increments(self):
        inst = NodeInstance(0, skylake_config(), "lammps",
                            app_kwargs=APP_KW, seed=1)
        inst.advance(2.0)
        first = inst.epoch_energy()
        inst.advance(4.0)
        second = inst.epoch_energy()
        assert first > 0 and second > 0
        assert first + second == pytest.approx(inst.node.pkg_energy)


class TestClusterSimulation:
    def test_lockstep_advance(self):
        sim = ClusterSimulation(3, "lammps", UniformPowerPolicy(3 * 90.0),
                                app_kwargs=APP_KW, seed=2)
        sim.run(6.0, epoch=2.0)
        assert sim.now == pytest.approx(6.0)
        assert all(n.now == pytest.approx(6.0) for n in sim.nodes)
        assert len(sim.total_progress) == 3

    def test_identical_nodes_without_variability(self):
        sim = ClusterSimulation(3, "lammps", UniformPowerPolicy(3 * 90.0),
                                app_kwargs=APP_KW, variability=None, seed=2)
        sim.run(6.0)
        freqs = sim.node_frequencies()
        assert len(set(freqs)) == 1

    def test_variability_spreads_capped_frequency(self):
        sim = ClusterSimulation(
            4, "lammps", UniformPowerPolicy(4 * 70.0),
            app_kwargs={"n_steps": 1_000_000},
            variability=(0.10, 0.25), seed=4,
        )
        sim.run(8.0)
        freqs = sim.node_frequencies()
        assert max(freqs) > min(freqs)

    def test_total_is_sum_and_critical_is_min(self):
        sim = ClusterSimulation(3, "lammps", UniformPowerPolicy(3 * 90.0),
                                app_kwargs=APP_KW, seed=2)
        sim.run(6.0)
        rates = sim.node_rates(window=1.0)
        assert sim.total_progress.values[-1] == pytest.approx(sum(rates))
        assert sim.critical_path.values[-1] == pytest.approx(min(rates))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterSimulation(0, "lammps", UniformPowerPolicy(100.0))
        sim = ClusterSimulation(1, "lammps", UniformPowerPolicy(100.0),
                                app_kwargs=APP_KW)
        with pytest.raises(ConfigurationError):
            sim.run(0.0)
        with pytest.raises(ConfigurationError):
            sim.steady_critical_path()
