"""Elasticity: the shard balancer's planning logic (pure, synthetic
timings), live node migration between shard workers (bit-identical
continuation), and typed failure when a worker dies mid-run.

The load-bearing invariant is the lockstep parity contract: placement
cannot affect simulated results, so every migration test compares
series with ``==``, never ``approx``.
"""

import os
import signal
import time

import pytest

pytestmark = pytest.mark.slow

from repro.cluster import ClusterSimulation, ShardedLockstep, StepRequest
from repro.cluster.elastic import (
    MigrationPlan,
    NodeMigration,
    ShardBalancer,
)
from repro.cluster.policies import UniformPowerPolicy
from repro.exceptions import ConfigurationError, ShardWorkerError
from repro.stack import BUDGET, StackSpec

APP_KW = {"n_workers": 4}


def _spec(node_id, seed=0):
    return StackSpec(app_name="lammps", app_kwargs=dict(APP_KW),
                     seed=seed, controller=BUDGET, name=f"node{node_id}")


# ----------------------------------------------------------------------
# ShardBalancer planning (pure logic — synthetic wall times)
# ----------------------------------------------------------------------


def balancer(**kw):
    kw.setdefault("warmup", 0)
    kw.setdefault("cooldown", 0)
    return ShardBalancer(**kw)


class TestShardBalancer:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShardBalancer(threshold=1.0)
        with pytest.raises(ConfigurationError):
            ShardBalancer(warmup=-1)

    def test_warmup_suppresses_early_plans(self):
        b = ShardBalancer(threshold=1.4, warmup=2, cooldown=0)
        times = {0: 10.0, 1: 1.0}
        nodes = {0: [0, 1, 2], 1: [3]}
        assert b.observe(times, nodes) is None
        assert b.observe(times, nodes) is None
        assert b.observe(times, nodes) is not None

    def test_below_threshold_no_plan(self):
        b = balancer(threshold=2.0)
        assert b.observe({0: 1.5, 1: 1.0}, {0: [0, 1], 1: [2]}) is None
        assert b.plans == 0

    def test_plan_moves_tail_of_slowest_to_fastest(self):
        b = balancer(threshold=1.4)
        plan = b.observe({0: 4.0, 1: 1.0}, {0: [0, 1, 2, 3], 1: [4]})
        assert isinstance(plan, MigrationPlan)
        assert all(isinstance(m, NodeMigration) for m in plan.moves)
        assert all(m.src == 0 and m.dst == 1 for m in plan.moves)
        # tail of the donor list, never the whole shard
        moved = [m.node_id for m in plan.moves]
        assert moved == [0, 1, 2, 3][-len(moved):]
        assert len(moved) < 4

    def test_never_empties_single_node_shard(self):
        b = balancer()
        assert b.observe({0: 10.0, 1: 1.0}, {0: [7], 1: [1, 2]}) is None

    def test_single_shard_no_plan(self):
        b = balancer()
        assert b.observe({0: 5.0}, {0: [0, 1]}) is None

    def test_cooldown_skips_after_plan(self):
        b = ShardBalancer(threshold=1.4, warmup=0, cooldown=2)
        times = {0: 10.0, 1: 1.0}
        nodes = {0: [0, 1, 2, 3], 1: [4]}
        assert b.observe(times, nodes) is not None
        assert b.observe(times, nodes) is None
        assert b.observe(times, nodes) is None
        assert b.observe(times, nodes) is not None
        assert b.plans == 2

    def test_max_moves_caps_plan(self):
        b = balancer(max_moves=1)
        plan = b.observe({0: 10.0, 1: 0.5},
                         {0: [0, 1, 2, 3, 4, 5], 1: [6]})
        assert len(plan.moves) == 1

    def test_zero_fast_time_no_plan(self):
        b = balancer()
        assert b.observe({0: 5.0, 1: 0.0}, {0: [0, 1], 1: [2]}) is None

    def test_ignores_shards_without_placement(self):
        b = balancer()
        # shard 1 timed but no longer holds nodes: not a candidate
        plan = b.observe({0: 4.0, 1: 0.1, 2: 1.0},
                         {0: [0, 1, 2], 2: [3]})
        assert plan is not None
        assert all(m.dst == 2 for m in plan.moves)

    def test_empty_shard_seeded_as_receiver(self):
        # A shard with no nodes never steps work, so it never gets a
        # wall time; it must still be reachable as a receiver (at an
        # implicit 0.0 s), or a fully skewed start can never unskew.
        b = balancer(threshold=1.4)
        plan = b.observe({0: 4.0}, {0: [0, 1, 2, 3], 1: []})
        assert plan is not None
        assert all(m.src == 0 and m.dst == 1 for m in plan.moves)
        # equalising estimate: per-node cost 1.0, so half the donors go
        assert [m.node_id for m in plan.moves] == [2, 3]

    def test_empty_shard_needs_measured_work(self):
        b = balancer()
        # nothing measured to move: no plan
        assert b.observe({0: 0.0}, {0: [0, 1], 1: []}) is None
        # still never empties the donor's last node
        assert b.observe({0: 5.0}, {0: [7], 1: []}) is None


# ----------------------------------------------------------------------
# Live migration between shard workers
# ----------------------------------------------------------------------


def _series(ls, node_ids, start, end):
    """Step nodes epoch-by-epoch, returning all reported floats."""
    out = []
    t = start
    while t < end - 1e-9:
        t += 1.0
        reqs = [StepRequest(node_id=i, target=t, budget=90.0,
                            set_budget=True, windows=(3.0, 1.0))
                for i in node_ids]
        for res in ls.step(reqs):
            out.append((res.node_id, res.now, res.energy,
                        res.cumulative, tuple(sorted(res.rates.items()))))
    return out


class TestMigrateNodes:
    @pytest.mark.parametrize("engine", ["object", "vector"])
    def test_migration_is_invisible_to_results(self, engine):
        ids = list(range(4))
        items = [(i, _spec(i, seed=i)) for i in ids]

        ref = ShardedLockstep(shards=2, engine=engine)
        try:
            ref.add_nodes(items)
            expected = _series(ref, ids, 0.0, 3.0)
            expected += _series(ref, ids, 3.0, 6.0)
        finally:
            ref.close()

        ls = ShardedLockstep(shards=2, engine=engine)
        try:
            ls.add_nodes(items)
            got = _series(ls, ids, 0.0, 3.0)
            # mid-run: move both of shard 0's nodes onto shard 1
            placement = ls.shard_nodes()
            moved = ls.migrate_nodes({nid: 1 for nid in placement[0]})
            assert moved == len(placement[0]) > 0
            assert ls.migrations == moved
            assert ls.shard_nodes()[0] == []
            got += _series(ls, ids, 3.0, 6.0)
        finally:
            ls.close()

        assert got == expected  # bit-identical, not approx

    def test_noop_and_unknown_moves(self):
        with ShardedLockstep(shards=2) as ls:
            ls.add_nodes([(0, _spec(0)), (1, _spec(1, seed=1))])
            src = ls.shard_nodes()
            assert ls.migrate_nodes({0: [s for s, nids in src.items()
                                         if 0 in nids][0]}) == 0
            with pytest.raises(ConfigurationError, match="unknown"):
                ls.migrate_nodes({99: 0})
            with pytest.raises(ConfigurationError, match="destination"):
                ls.migrate_nodes({0: 5})

    def test_serial_mode_never_migrates(self):
        ls = ShardedLockstep(shards=1)
        ls.add_nodes([(0, _spec(0))])
        assert ls.migrate_nodes({0: 0}) == 0
        ls.close()

    def test_explicit_shard_placement(self):
        with ShardedLockstep(shards=2) as ls:
            ls.add_nodes([(0, _spec(0)), (1, _spec(1, seed=1))],
                         shard=1)
            assert ls.shard_nodes() == {0: [], 1: [0, 1]}
            # pinned adds must not advance the round-robin cursor
            ls.add_nodes([(2, _spec(2, seed=2))])
            assert 2 in ls.shard_nodes()[0]
            with pytest.raises(ConfigurationError):
                ls.add_nodes([(3, _spec(3))], shard=9)

    def test_shard_times_measured_per_step(self):
        with ShardedLockstep(shards=2) as ls:
            ls.add_nodes([(0, _spec(0)), (1, _spec(1, seed=1))])
            assert ls.shard_times == {}
            ls.step([StepRequest(node_id=0, target=1.0),
                     StepRequest(node_id=1, target=1.0)])
            assert sorted(ls.shard_times) == [0, 1]
            assert all(t >= 0.0 for t in ls.shard_times.values())


class _OnePlanBalancer:
    """Deterministic stand-in: migrate node ``node_id`` to ``dst`` on
    the first observation, then stay quiet."""

    def __init__(self, node_id, dst):
        self.node_id = node_id
        self.dst = dst
        self.fired = False

    def observe(self, shard_times, shard_nodes):
        if self.fired:
            return None
        src = next(s for s, nids in shard_nodes.items()
                   if self.node_id in nids)
        if src == self.dst:
            return None
        self.fired = True
        return MigrationPlan(observation=1, moves=(
            NodeMigration(node_id=self.node_id, src=src, dst=self.dst),))


class TestBalancerInLoop:
    def test_forced_plan_applied_and_results_invariant(self):
        ids = list(range(4))
        items = [(i, _spec(i, seed=i)) for i in ids]

        ref = ShardedLockstep(shards=2)
        try:
            ref.add_nodes(items)
            expected = _series(ref, ids, 0.0, 5.0)
        finally:
            ref.close()

        bal = _OnePlanBalancer(node_id=0, dst=1)
        ls = ShardedLockstep(shards=2, balancer=bal)
        try:
            ls.add_nodes(items)
            got = _series(ls, ids, 0.0, 5.0)
            assert bal.fired
            assert ls.migrations == 1
            assert 0 in ls.shard_nodes()[1]
        finally:
            ls.close()

        assert got == expected

    def test_skewed_start_unskews_into_empty_shard(self):
        """All nodes pinned to shard 0 of 2: the real balancer must
        seed the never-stepped shard 1 (it has no wall time at all),
        and the migration must not perturb the series."""
        ids = list(range(4))
        items = [(i, _spec(i, seed=i)) for i in ids]

        ref = ShardedLockstep(shards=2)
        try:
            ref.add_nodes(items, shard=0)
            expected = _series(ref, ids, 0.0, 5.0)
        finally:
            ref.close()

        bal = ShardBalancer(threshold=1.05, warmup=0, cooldown=0)
        ls = ShardedLockstep(shards=2, balancer=bal)
        try:
            ls.add_nodes(items, shard=0)
            got = _series(ls, ids, 0.0, 5.0)
            # shard 0's wall time is real (> 0) and shard 1's implicit
            # 0.0 s beats any threshold, so the first eligible
            # observation must fire deterministically
            assert bal.plans >= 1
            assert ls.migrations >= 1
            assert ls.shard_nodes()[1] != []
        finally:
            ls.close()

        assert got == expected

    def test_cluster_simulation_balance_flag(self):
        """balance=True end-to-end: whether or not the real balancer
        fires (wall times are nondeterministic), the series must equal
        the serial run's bit-for-bit."""
        policy = UniformPowerPolicy(360.0)
        serial = ClusterSimulation(4, "lammps", policy,
                                   app_kwargs=APP_KW, seed=11)
        try:
            serial.run(6.0)
            expected = (list(serial.total_progress.values),
                        list(serial.critical_path.values),
                        serial.total_energy)
        finally:
            serial.close()

        sim = ClusterSimulation(4, "lammps", UniformPowerPolicy(360.0),
                                app_kwargs=APP_KW, seed=11, shards=2,
                                balance=True)
        try:
            sim.run(6.0)
            got = (list(sim.total_progress.values),
                   list(sim.critical_path.values),
                   sim.total_energy)
            assert sim.migrations >= 0  # counter exists either way
        finally:
            sim.close()

        assert got == expected


# ----------------------------------------------------------------------
# Worker death → typed error, not a hang
# ----------------------------------------------------------------------


class TestShardWorkerError:
    def test_killed_worker_raises_typed_error(self):
        ls = ShardedLockstep(shards=2)
        try:
            ls.add_nodes([(0, _spec(0)), (1, _spec(1, seed=1))])
            victim = ls._workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while victim.is_alive() and time.monotonic() < deadline:
                time.sleep(0.01)
            with pytest.raises(ShardWorkerError) as err:
                for _ in range(3):  # buffered sends may succeed once
                    ls.step([StepRequest(node_id=0, target=1.0),
                             StepRequest(node_id=1, target=1.0)])
            assert err.value.shard == 0
            assert "checkpoint" in str(err.value)
        finally:
            ls.close()  # must not hang on the dead worker

    def test_close_after_partial_construction(self):
        with pytest.raises(ConfigurationError):
            ShardedLockstep(shards=2, engine="warp")
        # surviving the constructor raising is the test: __del__ runs
        # close() on the partially built instance without AttributeError
