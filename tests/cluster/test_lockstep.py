"""Tests for the shared epoch-lockstep helpers."""

import pytest

pytestmark = pytest.mark.slow

from repro.cluster.lockstep import (
    advance_lockstep,
    collect_rates,
    rebalance_nodes,
)
from repro.cluster.node_instance import NodeInstance
from repro.cluster.policies import UniformPowerPolicy
from repro.hardware.config import skylake_config

APP_KW = {"n_steps": 1_000_000, "n_workers": 8}


def make_nodes(n=2, seed=0, budget=None):
    return [NodeInstance(i, skylake_config(), "lammps", app_kwargs=APP_KW,
                         seed=seed + 1000 * i, initial_budget=budget)
            for i in range(n)]


class TestCollectRates:
    def test_first_epoch_is_all_zeros(self):
        # Before any epoch has run, no monitor has closed a window: the
        # guard must report 0.0 instead of NaN-poisoning an allocator.
        nodes = make_nodes(2)
        assert collect_rates(nodes, window=3.0) == [0.0, 0.0]

    def test_rates_positive_after_progress(self):
        nodes = make_nodes(2)
        advance_lockstep(nodes, 4.0)
        rates = collect_rates(nodes, window=3.0)
        assert all(r > 0.0 for r in rates)


class TestRebalanceNodes:
    def test_first_epoch_allocation_survives_empty_series(self):
        nodes = make_nodes(3)
        budgets = rebalance_nodes(nodes, UniformPowerPolicy(300.0),
                                  window=3.0)
        assert budgets == pytest.approx([100.0] * 3)

    def test_budgets_delivered_to_policies(self):
        nodes = make_nodes(2)
        rebalance_nodes(nodes, UniformPowerPolicy(160.0), window=3.0)
        advance_lockstep(nodes, 4.0)  # policy applies on its next tick
        for node in nodes:
            assert node.policy.cap_series.values[-1] == pytest.approx(80.0)


class TestAdvanceLockstep:
    def test_advances_all_nodes_and_sums_energy(self):
        nodes = make_nodes(2)
        energy = advance_lockstep(nodes, 3.0)
        assert all(n.now == pytest.approx(3.0) for n in nodes)
        assert energy == pytest.approx(sum(n.node.pkg_energy for n in nodes))

    def test_energy_is_per_epoch_delta(self):
        nodes = make_nodes(1)
        first = advance_lockstep(nodes, 2.0)
        second = advance_lockstep(nodes, 4.0)
        assert first > 0 and second > 0
        assert first + second == pytest.approx(nodes[0].node.pkg_energy)
