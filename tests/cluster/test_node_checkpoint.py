"""Energy accounting across a NodeInstance snapshot/restore boundary.

Regression guard for a double-counting hazard: ``epoch_energy()`` is a
*delta* against ``_energy_mark``, so a checkpoint that did not carry the
mark would make the restored node re-report every joule consumed before
the snapshot in its first post-restore epoch.
"""

import pickle

import pytest

from repro.cluster.node_instance import NodeInstance
from repro.hardware.config import skylake_config

pytestmark = pytest.mark.slow

APP_KW = {"n_steps": 1_000_000, "n_workers": 4}


def _node(node_id=0, seed=5):
    return NodeInstance(node_id, skylake_config(), "lammps",
                        app_kwargs=APP_KW, seed=seed)


class TestEnergyMarkAcrossCheckpoint:
    def test_mark_travels_with_checkpoint(self):
        node = _node()
        node.advance(4.0)
        node.epoch_energy()  # consume the first epoch: mark is non-zero
        node.advance(6.0)
        state = pickle.loads(pickle.dumps(node.snapshot(), protocol=4))
        assert state["energy_mark"] == node._energy_mark > 0.0
        clone = NodeInstance.from_checkpoint(state)
        assert clone._energy_mark == node._energy_mark

    def test_no_double_count_after_restore(self):
        node = _node()
        node.advance(4.0)
        e_first = node.epoch_energy()
        node.advance(6.0)
        state = pickle.loads(pickle.dumps(node.snapshot(), protocol=4))

        clone = NodeInstance.from_checkpoint(state)
        clone.advance(8.0)
        e_clone = clone.epoch_energy()

        node.advance(8.0)
        e_orig = node.epoch_energy()

        # identical deltas, and neither re-reports the pre-snapshot epoch
        assert e_clone == e_orig
        assert e_clone < e_first + e_orig
        # the two epochs together account for all energy consumed
        assert e_first + e_orig == pytest.approx(node.node.pkg_energy)

    def test_restored_node_matches_original_telemetry(self):
        node = _node()
        node.advance(5.0)
        state = pickle.loads(pickle.dumps(node.snapshot(), protocol=4))
        clone = NodeInstance.from_checkpoint(state)

        node.advance(9.0)
        clone.advance(9.0)
        assert clone.now == node.now
        assert clone.node_id == node.node_id
        assert clone.cumulative_progress() == node.cumulative_progress()
        assert clone.recent_rate(3.0) == node.recent_rate(3.0)
        assert clone.epoch_energy() == node.epoch_energy()
