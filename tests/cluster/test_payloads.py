"""Per-epoch pickle payload accounting on the sharded lockstep."""

import pytest

from repro.cluster import PayloadStats, ShardedLockstep, StepRequest
from repro.stack import BUDGET, StackSpec

pytestmark = pytest.mark.slow

APP_KW = {"n_workers": 4}


def _spec(node_id, seed=0):
    return StackSpec(app_name="lammps", app_kwargs=dict(APP_KW),
                     seed=seed, controller=BUDGET, name=f"node{node_id}")


def _requests(target):
    return [StepRequest(node_id=i, target=target, budget=90.0,
                        set_budget=True, windows=(1.0,))
            for i in range(2)]


class TestPayloadStats:
    def test_only_step_dispatches_count_as_epochs(self):
        stats = PayloadStats()
        stats.record("add_nodes", 500, 20)
        stats.record("step", 100, 40)
        stats.record("step", 120, 44)
        stats.record("rates", 60, 30)
        assert stats.epochs == 2
        assert stats.epoch_payloads == [(100, 40), (120, 44)]
        assert stats.dispatches == 4
        assert stats.bytes_down == 780
        assert stats.bytes_up == 134

    def test_mean_epoch_bytes(self):
        stats = PayloadStats()
        stats.record("step", 100, 40)
        stats.record("step", 200, 60)
        assert stats.mean_epoch_bytes() == (150.0, 50.0)

    def test_mean_of_no_epochs_is_zero(self):
        assert PayloadStats().mean_epoch_bytes() == (0.0, 0.0)


class TestShardedMeasurement:
    def test_off_by_default(self):
        with ShardedLockstep(shards=2) as ls:
            ls.add_nodes([(i, _spec(i, seed=i)) for i in range(2)])
            ls.step(_requests(1.0))
            assert ls.measure_payloads is False
            assert ls.payload_stats.epochs == 0

    def test_measured_sharded_epochs_record_bytes(self):
        with ShardedLockstep(shards=2, measure_payloads=True) as ls:
            ls.add_nodes([(i, _spec(i, seed=i)) for i in range(2)])
            ls.step(_requests(1.0))
            ls.step(_requests(2.0))
            stats = ls.payload_stats
            assert stats.epochs == 2
            down, up = stats.mean_epoch_bytes()
            assert down > 0 and up > 0
            # add_nodes ships whole StackSpecs; steps ship only budgets
            # down and (rates, energy) up, so they must be far smaller.
            assert stats.bytes_down > sum(
                d for d, _ in stats.epoch_payloads)

    def test_measurement_does_not_change_results(self):
        def run(measure):
            with ShardedLockstep(shards=2,
                                 measure_payloads=measure) as ls:
                ls.add_nodes([(i, _spec(i, seed=i)) for i in range(2)])
                results = ls.step(_requests(1.0))
                return [(r.node_id, r.now, r.energy,
                         sorted(r.rates.items())) for r in results]

        assert run(True) == run(False)

    def test_serial_lockstep_records_nothing(self):
        with ShardedLockstep(shards=1, measure_payloads=True) as ls:
            ls.add_nodes([(0, _spec(0))])
            ls.step([StepRequest(node_id=0, target=1.0, budget=90.0,
                                 set_budget=True, windows=(1.0,))])
            assert ls.payload_stats.epochs == 0
