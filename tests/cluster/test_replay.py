"""Replay determinism: a run rewound to epoch N and replayed under the
same policy must be bit-identical to the uninterrupted run — across
both engines and shards in {1, 2, 4} — and the rewind helpers must
support resuming onto a *different* substrate or policy (time travel).

Resumed runs continue with ``run(until=END)`` sharing the original end
time: recomputing ``now + (END - now)`` would re-associate the float
arithmetic and shift epoch targets by ULPs.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.cluster import (
    ClusterSimulation,
    ProgressAwareRebalancer,
    UniformPowerPolicy,
    rewind_cluster,
    rewind_scheduler,
)
from repro.core.model import PowerCapModel
from repro.exceptions import CheckpointError, ConfigurationError
from repro.runtime.runfile import CheckpointStore
from repro.scheduler import (
    AppPowerProfile,
    Job,
    PowerAwareScheduler,
    PowerBook,
    SchedulerConfig,
)

APP_KW = {"n_workers": 4}
END = 8.0


def _policy():
    return ProgressAwareRebalancer(360.0, min_node=60.0, max_node=130.0)


def _sim(**kw):
    return ClusterSimulation(3, "lammps", _policy(), app_kwargs=APP_KW,
                             variability=(0.05, 0.08), seed=11, **kw)


def _observed(sim):
    return {
        "times": list(sim.total_progress.times),
        "total_progress": list(sim.total_progress.values),
        "critical_path": list(sim.critical_path.values),
        "budget_history": list(sim.budget_history.values),
        "total_energy": sim.total_energy,
        "now": sim.now,
        "epochs": sim.epochs_done,
    }


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One uninterrupted serial run, checkpointing every 2 epochs."""
    root = str(tmp_path_factory.mktemp("cluster-store"))
    store = CheckpointStore(root, kind="cluster")
    sim = _sim()
    try:
        sim.run(until=END, checkpoint_store=store, checkpoint_every=2)
        return {"root": root, "series": _observed(sim)}
    finally:
        sim.close()


class TestClusterReplay:
    def test_store_has_epoch_stamped_files(self, recorded):
        store = CheckpointStore(recorded["root"], kind="cluster")
        assert store.epochs() == [2, 4, 6, 8]

    @pytest.mark.parametrize("engine", ["object", "vector"])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_rewind_and_replay_bit_identical(self, recorded, shards,
                                             engine):
        """Resume from epoch 4 on every substrate: the tail the replay
        recomputes must land exactly on the recorded series."""
        sim = rewind_cluster(recorded["root"], epoch=4, shards=shards,
                             engine=engine)
        try:
            assert sim.epochs_done == 4
            sim.run(until=END)
            assert _observed(sim) == recorded["series"]
        finally:
            sim.close()

    def test_rewind_latest_then_nothing_to_run(self, recorded):
        sim = rewind_cluster(recorded["root"])
        try:
            assert sim.epochs_done == 8
            with pytest.raises(ConfigurationError, match="not after"):
                sim.run(until=END)
        finally:
            sim.close()

    def test_checkpoint_every_requires_store(self):
        sim = _sim()
        try:
            with pytest.raises(ConfigurationError):
                sim.run(2.0, checkpoint_every=2)
            with pytest.raises(ConfigurationError):
                sim.run(2.0, until=2.0)
        finally:
            sim.close()

    def test_restore_requires_fresh_target(self, recorded):
        store = CheckpointStore(recorded["root"], kind="cluster")
        sim = _sim()
        try:
            with pytest.raises(CheckpointError, match="freshly"):
                sim.restore(store.load(4).state)
        finally:
            sim.close()

    def test_replay_under_different_policy(self, recorded):
        """The time-travel seam: same node state, different schedule
        from epoch 4 on — runs to completion and allocates differently."""
        sim = rewind_cluster(recorded["root"], epoch=4,
                             policy=UniformPowerPolicy(240.0))
        try:
            sim.run(until=END)
            got = _observed(sim)
            assert got["now"] == recorded["series"]["now"]
            # the shared prefix is the recorded one; the tail diverges
            assert got["budget_history"][:4] == \
                recorded["series"]["budget_history"][:4]
            assert got["budget_history"][4:] != \
                recorded["series"]["budget_history"][4:]
        finally:
            sim.close()

    def test_wrong_kind_rejected(self, recorded):
        store = CheckpointStore(recorded["root"], kind="cluster")
        checkpoint = store.load(4)
        with pytest.raises(CheckpointError):
            ClusterSimulation.resume(
                __import__("dataclasses").replace(checkpoint,
                                                  kind="daemon"))


# ----------------------------------------------------------------------
# Scheduler replay
# ----------------------------------------------------------------------

RATE, POWER = 8.96e5, 65.0


def _book():
    book = PowerBook(n_workers=4)
    book.preload(AppPowerProfile(
        app_name="lammps", beta=1.0, mpo=3e-4, r_max=RATE,
        p_uncapped=POWER,
        model=PowerCapModel(beta=1.0, r_max=RATE, p_coremax=POWER,
                            alpha=2.0),
        fit_residual_rms=0.0, probe_caps=(50.0,)))
    return book


def _sched_config(**kw):
    base = dict(n_slots=4, power_budget=260.0, policy="backfill",
                min_cap=45.0, cap_step=5.0, eco_margin=0.8,
                n_workers=4, variability=(0.04, 0.06), seed=3)
    base.update(kw)
    return SchedulerConfig(**base)


def _submit_jobs(sched):
    kw = {"n_steps": 1_000_000}
    sched.submit(Job("rigid", "lammps", n_nodes=2,
                     work_units=6.5 * RATE, submit_time=0.0,
                     app_kwargs=kw))
    sched.submit(Job("eco", "lammps", n_nodes=2, work_units=5.0 * RATE,
                     submit_time=1.0, max_slowdown=0.3, app_kwargs=kw))
    sched.submit(Job("late", "lammps", n_nodes=3, work_units=4.0 * RATE,
                     submit_time=4.0, app_kwargs=kw))


def _report(sched):
    return {
        "total_energy": sched.total_energy,
        "violations": sched.violations,
        "power_values": list(sched.power_series.values),
        "records": {jid: [r.start_time, r.end_time, r.energy,
                          r.measured_rate, r.cap, list(r.slots)]
                    for jid, r in sched.records.items()},
        "events": [repr(e) for e in sched.events],
        "epochs": sched.epochs_done,
    }


@pytest.fixture(scope="module")
def recorded_sched(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("sched-store"))
    store = CheckpointStore(root, kind="scheduler")
    sched = PowerAwareScheduler(_sched_config(), _book())
    _submit_jobs(sched)
    try:
        sched.run(checkpoint_store=store, checkpoint_every=3)
        return {"root": root, "report": _report(sched)}
    finally:
        sched.close()


class TestSchedulerReplay:
    def test_rewind_and_finish_bit_identical(self, recorded_sched):
        sched = rewind_scheduler(recorded_sched["root"], _book(),
                                 epoch=6)
        try:
            assert sched.epochs_done == 6
            sched.run()
            assert _report(sched) == recorded_sched["report"]
        finally:
            sched.close()

    @pytest.mark.parametrize("shards,engine",
                             [(2, "object"), (2, "vector")])
    def test_resume_onto_different_substrate(self, recorded_sched,
                                             shards, engine):
        """Execution substrate (shards/engine) is replay-invariant; only
        structural config fields must match the recorded run."""
        sched = rewind_scheduler(
            recorded_sched["root"], _book(), epoch=6,
            config=_sched_config(shards=shards, engine=engine))
        try:
            sched.run()
            assert _report(sched) == recorded_sched["report"]
        finally:
            sched.close()

    def test_run_checkpoint_kind(self, recorded_sched):
        store = CheckpointStore(recorded_sched["root"],
                                kind="scheduler")
        checkpoint = store.latest()
        assert checkpoint.kind == "scheduler"
        assert checkpoint.epoch == checkpoint.state["epochs"]

    def test_checkpoint_every_requires_store(self):
        sched = PowerAwareScheduler(_sched_config(), _book())
        try:
            with pytest.raises(ConfigurationError):
                sched.run(checkpoint_every=2)
        finally:
            sched.close()
