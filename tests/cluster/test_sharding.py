"""Sharded-lockstep tests: golden parity against the pre-refactor serial
cluster output, serial == sharded equivalence, and the worker protocol.

``fixtures/golden_cluster.json`` was recorded by the serial
pre-refactor ``ClusterSimulation`` (before the epoch loop moved onto
:class:`ShardedLockstep`); the parity tests require every shard count to
reproduce it *exactly* — same floats, not approximately.
"""

import json
import pathlib

import pytest

pytestmark = pytest.mark.slow

from repro.cluster import (
    ClusterSimulation,
    NodeInstance,
    ProgressAwareRebalancer,
    ShardedLockstep,
    StepRequest,
    UniformPowerPolicy,
)
from repro.exceptions import ConfigurationError, SimulationError
from repro.stack import BUDGET, StackSpec

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "golden_cluster.json"

APP_KW = {"n_workers": 4}


def _golden():
    with open(FIXTURE) as f:
        return json.load(f)


def _policy(name):
    if name == "uniform":
        return UniformPowerPolicy(360.0)
    return ProgressAwareRebalancer(360.0, min_node=60.0, max_node=130.0)


def _run_cluster(policy_name, shards):
    sim = ClusterSimulation(3, "lammps", _policy(policy_name),
                            app_kwargs=APP_KW, variability=(0.05, 0.08),
                            seed=11, shards=shards)
    try:
        sim.run(10.0, epoch=1.0)
        return {
            "times": list(sim.total_progress.times),
            "total_progress": list(sim.total_progress.values),
            "critical_path": list(sim.critical_path.values),
            "budget_history": list(sim.budget_history.values),
            "total_energy": sim.total_energy,
            "now": sim.now,
            "node_rates": sim.node_rates(window=5.0),
            "node_frequencies": sim.node_frequencies(),
        }
    finally:
        sim.close()


class TestGoldenParity:
    """Serial and sharded runs must both reproduce the pre-refactor
    output bit-for-bit (values compared with ==, not approx)."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("policy_name", ["uniform", "progress"])
    def test_matches_pre_refactor_fixture(self, policy_name, shards):
        golden = _golden()[policy_name]
        got = _run_cluster(policy_name, shards)
        for key, expected in golden.items():
            assert got[key] == expected, f"{key} diverged at shards={shards}"


def _spec(node_id, seed=0):
    return StackSpec(app_name="lammps", app_kwargs=dict(APP_KW),
                     seed=seed, controller=BUDGET, name=f"node{node_id}")


class TestShardedLockstep:
    def test_rejects_bad_shards(self):
        with pytest.raises(ConfigurationError):
            ShardedLockstep(shards=0)

    def test_serial_exposes_local_nodes(self):
        ls = ShardedLockstep(shards=1)
        ls.add_nodes([(0, _spec(0))])
        assert isinstance(ls.local_nodes()[0], NodeInstance)
        ls.close()

    def test_sharded_hides_local_nodes(self):
        with ShardedLockstep(shards=2) as ls:
            ls.add_nodes([(0, _spec(0)), (1, _spec(1, seed=1))])
            with pytest.raises(ConfigurationError):
                ls.local_nodes()

    def test_duplicate_node_id_rejected(self):
        ls = ShardedLockstep(shards=1)
        ls.add_nodes([(0, _spec(0))])
        with pytest.raises(ConfigurationError):
            ls.add_nodes([(0, _spec(0))])
        ls.close()

    def test_step_results_in_request_order(self):
        with ShardedLockstep(shards=2) as ls:
            ls.add_nodes([(i, _spec(i, seed=i)) for i in range(3)])
            reqs = [StepRequest(node_id=i, target=2.0, windows=(1.0,))
                    for i in (2, 0, 1)]
            results = ls.step(reqs)
            assert [r.node_id for r in results] == [2, 0, 1]
            assert all(r.now == pytest.approx(2.0) for r in results)
            assert all(r.energy > 0 for r in results)

    def test_worker_error_propagates(self):
        with ShardedLockstep(shards=2) as ls:
            ls.add_nodes([(0, _spec(0))])
            with pytest.raises(SimulationError, match="shard"):
                # rewinding a node raises inside the worker
                ls.step([StepRequest(node_id=0, target=1.0)])
                ls.step([StepRequest(node_id=0, target=0.5)])

    def test_checkpoint_migrates_between_layouts(self):
        """A node checkpointed out of one lockstep and rebuilt in
        another continues bit-for-bit."""
        ref = ShardedLockstep(shards=1)
        ref.add_nodes([(0, _spec(0))])
        ref.step([StepRequest(node_id=0, target=3.0)])
        snap = ref.checkpoint([0])[0]
        [ref_res] = ref.step([StepRequest(node_id=0, target=6.0,
                                          windows=(2.0,))])
        ref.close()

        with ShardedLockstep(shards=2) as ls:
            ls.add_nodes([(0, snap)])
            [res] = ls.step([StepRequest(node_id=0, target=6.0,
                                         windows=(2.0,))])
        assert res.now == ref_res.now
        assert res.energy == ref_res.energy
        assert res.cumulative == ref_res.cumulative
        assert res.rates == ref_res.rates

    def test_remove_then_reuse_node_id(self):
        with ShardedLockstep(shards=2) as ls:
            ls.add_nodes([(0, _spec(0)), (1, _spec(1, seed=1))])
            ls.step([StepRequest(node_id=0, target=1.0),
                     StepRequest(node_id=1, target=1.0)])
            ls.remove_nodes([0, 1])
            assert ls.n_nodes == 0
            ls.add_nodes([(0, _spec(0, seed=5))])
            [res] = ls.step([StepRequest(node_id=0, target=1.0)])
            assert res.now == pytest.approx(1.0)

    def test_close_is_idempotent(self):
        ls = ShardedLockstep(shards=2)
        ls.add_nodes([(0, _spec(0))])
        ls.close()
        ls.close()
        with pytest.raises(SimulationError):
            ls.step([StepRequest(node_id=0, target=1.0)])

    def test_telemetry_carries_series_copy(self):
        with ShardedLockstep(shards=1) as ls:
            ls.add_nodes([(0, _spec(0))])
            ls.step([StepRequest(node_id=0, target=3.0)])
            tel = ls.telemetry([0])[0]
            assert tel.pkg_energy > 0
            assert len(tel.progress) >= 1
            assert tel.interval == pytest.approx(1.0)
            # mutating the copy must not corrupt the live monitor
            tel.progress.append(99.0, 1.0)
            assert ls.telemetry([0])[0].progress.times[-1] != 99.0
