"""Repo-wide fixtures.

``REPRO_SANITIZE=1`` runs the whole suite under the runtime lock
sanitizer (:mod:`repro.sanitize`): every test gets a fresh recording
:class:`~repro.sanitize.LockTracker`, and any lock-order inversion or
guard violation the test's execution produced fails it at teardown
with the full violation log. With the variable unset the fixture is
inert and the sanitizer stays off (its zero-cost-off contract).

Tests that manage their own tracker (``tests/sanitize``,
``tests/daemon/test_sanitize.py``) carry the ``own_tracker`` marker:
the fixture skips them — a second activation would raise — and they
run identically in both modes.
"""

import os

import pytest

from repro import sanitize


@pytest.fixture(autouse=True)
def _lock_sanitizer(request):
    if os.environ.get("REPRO_SANITIZE") != "1":
        yield
        return
    if request.node.get_closest_marker("own_tracker") is not None or \
            sanitize.current() is not None:
        # a test-managed tracker is (or will be) active; stay out of
        # its way
        yield
        return
    tracker = sanitize.LockTracker(strict=False)
    sanitize.activate(tracker)
    try:
        yield
    finally:
        sanitize.deactivate()
    if tracker.violations:
        pytest.fail(
            "lock sanitizer recorded "
            f"{len(tracker.violations)} violation(s):\n"
            + tracker.render_violations())
