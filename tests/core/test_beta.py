"""Unit and property tests for beta and MPO computation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.beta import beta_from_times, mpo_from_delta
from repro.exceptions import ModelError
from repro.hardware.counters import CounterBank


class TestBetaFromTimes:
    def test_compute_bound(self):
        # time doubles when frequency halves
        assert beta_from_times(2.0, 1.0, 1.65e9, 3.3e9) == pytest.approx(1.0)

    def test_memory_bound(self):
        assert beta_from_times(1.0, 1.0, 1.6e9, 3.3e9) == pytest.approx(0.0)

    def test_paper_amg_value(self):
        # beta = 0.52 implies t_low/t_high = 0.52*(3.3/1.6-1)+1
        ratio = 0.52 * (3.3 / 1.6 - 1.0) + 1.0
        assert beta_from_times(ratio, 1.0, 1.6e9, 3.3e9) == pytest.approx(0.52)

    def test_clips_above_one(self):
        assert beta_from_times(10.0, 1.0, 1.65e9, 3.3e9) == 1.0

    def test_clips_below_zero(self):
        assert beta_from_times(0.9, 1.0, 1.65e9, 3.3e9) == 0.0

    def test_rejects_bad_frequencies(self):
        with pytest.raises(ModelError):
            beta_from_times(1.0, 1.0, 3.3e9, 1.6e9)

    def test_rejects_nonpositive_times(self):
        with pytest.raises(ModelError):
            beta_from_times(0.0, 1.0, 1.6e9, 3.3e9)

    @given(beta=st.floats(min_value=0.0, max_value=1.0),
           f_low=st.floats(min_value=1.0e9, max_value=3.2e9))
    def test_inverts_eq1_exactly(self, beta, f_low):
        f_high = 3.3e9
        t_high = 7.0
        t_low = t_high * (beta * (f_high / f_low - 1.0) + 1.0)
        assert beta_from_times(t_low, t_high, f_low, f_high) == pytest.approx(
            beta, abs=1e-9
        )


class TestMPO:
    def test_from_counter_delta(self):
        bank = CounterBank(2)
        s0 = bank.snapshot(0.0)
        bank.accrue(0, instructions=1e9, l3_misses=2e6)
        bank.accrue(1, instructions=1e9, l3_misses=2e6)
        delta = bank.snapshot(1.0).delta(s0)
        assert mpo_from_delta(delta) == pytest.approx(2e-3)

    def test_zero_instructions_raises(self):
        bank = CounterBank(1)
        s0 = bank.snapshot(0.0)
        delta = bank.snapshot(1.0).delta(s0)
        with pytest.raises(ModelError):
            mpo_from_delta(delta)
