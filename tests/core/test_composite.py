"""Unit tests for weighted multi-component progress."""

import pytest

from repro.core.composite import ComponentSpec, CompositeProgress
from repro.exceptions import ConfigurationError
from repro.telemetry.timeseries import TimeSeries


def series_from(pairs):
    return TimeSeries("x", pairs)


class TestComponentSpec:
    def test_rejects_nonpositive_baseline(self):
        with pytest.raises(ConfigurationError):
            ComponentSpec("a", baseline_rate=0.0)

    def test_rejects_negative_weight(self):
        with pytest.raises(ConfigurationError):
            ComponentSpec("a", baseline_rate=1.0, weight=-1.0)


class TestCompositeProgress:
    def test_needs_components(self):
        with pytest.raises(ConfigurationError):
            CompositeProgress([])

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ConfigurationError):
            CompositeProgress([ComponentSpec("a", 1.0, weight=0.0)])

    def test_normalize(self):
        cp = CompositeProgress([ComponentSpec("a", baseline_rate=40.0)])
        assert cp.normalize("a", 20.0) == pytest.approx(0.5)

    def test_normalize_unknown_component(self):
        cp = CompositeProgress([ComponentSpec("a", 1.0)])
        with pytest.raises(ConfigurationError):
            cp.normalize("b", 1.0)

    def test_combine_equal_weights(self):
        cp = CompositeProgress([
            ComponentSpec("fast", baseline_rate=40.0),
            ComponentSpec("slow", baseline_rate=0.2),
        ])
        fast = series_from([(1.0, 40.0), (2.0, 40.0), (3.0, 20.0)])
        slow = series_from([(1.0, 0.2), (2.0, 0.2), (3.0, 0.1)])
        combined = cp.combine({"fast": fast, "slow": slow})
        # both at baseline -> 1.0; both at half -> 0.5
        assert combined.values[0] == pytest.approx(1.0)
        assert combined.values[-1] == pytest.approx(0.5)

    def test_combine_weights_bias(self):
        cp = CompositeProgress([
            ComponentSpec("a", baseline_rate=10.0, weight=3.0),
            ComponentSpec("b", baseline_rate=10.0, weight=1.0),
        ])
        a = series_from([(1.0, 10.0), (2.0, 10.0)])
        b = series_from([(1.0, 0.0001), (2.0, 5.0)])  # b at half speed later
        combined = cp.combine({"a": a, "b": b})
        # last bin: (3*1.0 + 1*0.5)/4
        assert combined.values[-1] == pytest.approx(0.875)

    def test_silent_component_forward_fills(self):
        cp = CompositeProgress([
            ComponentSpec("fast", baseline_rate=10.0),
            ComponentSpec("slow", baseline_rate=1.0),
        ])
        fast = series_from([(i + 1.0, 10.0) for i in range(9)])
        slow = series_from([(1.0, 1.0)])   # reports once, then silence
        combined = cp.combine({"fast": fast, "slow": slow})
        # slow's last known normalized rate (1.0) persists
        assert combined.values[-1] == pytest.approx(1.0)

    def test_missing_series_raises(self):
        cp = CompositeProgress([ComponentSpec("a", 1.0)])
        with pytest.raises(ConfigurationError):
            cp.combine({})
