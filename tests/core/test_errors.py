"""Unit tests for prediction-error analysis."""

import pytest

from repro.core.errors import ErrorSummary, percentage_error, summarize_errors
from repro.exceptions import ModelError


class TestPercentageError:
    def test_overestimate_is_positive(self):
        assert percentage_error(12.0, 10.0) == pytest.approx(20.0)

    def test_underestimate_is_negative(self):
        assert percentage_error(3.0, 10.0) == pytest.approx(-70.0)

    def test_paper_example_250_percent(self):
        # "overestimating the impact by 250% of the measured value"
        assert percentage_error(3.5, 1.0) == pytest.approx(250.0)

    def test_zero_measured_raises(self):
        with pytest.raises(ModelError):
            percentage_error(1.0, 0.0)

    def test_negative_measured_uses_magnitude(self):
        assert percentage_error(-1.0, -2.0) == pytest.approx(50.0)


class TestSummarize:
    def test_basic_summary(self):
        s = summarize_errors([11.0, 8.0, 10.0], [10.0, 10.0, 10.0])
        assert s.n_points == 3
        assert s.mape == pytest.approx((10 + 20 + 0) / 3)
        assert s.max_overestimate == pytest.approx(10.0)
        assert s.max_underestimate == pytest.approx(-20.0)

    def test_all_over(self):
        s = summarize_errors([12.0], [10.0])
        assert s.max_underestimate == 0.0

    def test_within(self):
        s = summarize_errors([11.0, 15.0], [10.0, 10.0])
        assert s.within(10.0) == pytest.approx(0.5)
        assert s.within(50.0) == 1.0

    def test_within_rejects_negative(self):
        s = summarize_errors([11.0], [10.0])
        with pytest.raises(ModelError):
            s.within(-1.0)

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            summarize_errors([], [])

    def test_rejects_mismatched(self):
        with pytest.raises(ModelError):
            summarize_errors([1.0], [1.0, 2.0])
