"""Unit tests for model fitting."""

import numpy as np
import pytest

from repro.core.fitting import fit_alpha, fit_beta_alpha
from repro.core.model import PowerCapModel
from repro.exceptions import FittingError


def synth_observations(beta, alpha, r_max=100.0, p_coremax=150.0, n=8,
                       noise=0.0, seed=0):
    model = PowerCapModel(beta=beta, r_max=r_max, p_coremax=p_coremax,
                          alpha=alpha)
    caps = np.linspace(30.0, 140.0, n)
    rng = np.random.default_rng(seed)
    rates = np.array([
        model.progress_at_core_power(c) * (1.0 + rng.normal(0, noise))
        for c in caps
    ])
    return caps, rates


class TestFitAlpha:
    def test_recovers_true_alpha_noiseless(self):
        caps, rates = synth_observations(beta=0.8, alpha=2.7)
        fit = fit_alpha(caps, rates, beta=0.8, r_max=100.0, p_coremax=150.0)
        assert fit.alpha == pytest.approx(2.7, abs=0.02)
        assert fit.residual_rms < 1e-3

    def test_recovers_alpha_with_noise(self):
        caps, rates = synth_observations(beta=0.6, alpha=1.8, noise=0.01,
                                         n=12)
        fit = fit_alpha(caps, rates, beta=0.6, r_max=100.0, p_coremax=150.0)
        assert fit.alpha == pytest.approx(1.8, abs=0.3)

    def test_alpha_stays_in_bounds(self):
        # data generated far outside the bounds still fits inside them
        caps = np.array([50.0, 100.0])
        rates = np.array([10.0, 90.0])
        fit = fit_alpha(caps, rates, beta=1.0, r_max=100.0, p_coremax=150.0)
        assert 1.0 <= fit.alpha <= 4.0

    def test_needs_two_points(self):
        with pytest.raises(FittingError):
            fit_alpha([50.0], [10.0], beta=1.0, r_max=100.0, p_coremax=150.0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(FittingError):
            fit_alpha([50.0, 60.0], [10.0], beta=1.0, r_max=100.0,
                      p_coremax=150.0)

    def test_rejects_nonpositive_caps(self):
        with pytest.raises(FittingError):
            fit_alpha([0.0, 60.0], [10.0, 20.0], beta=1.0, r_max=100.0,
                      p_coremax=150.0)


class TestFitBetaAlpha:
    def test_recovers_both_noiseless(self):
        caps, rates = synth_observations(beta=0.55, alpha=2.2, n=10)
        fit = fit_beta_alpha(caps, rates, r_max=100.0, p_coremax=150.0)
        assert fit.beta == pytest.approx(0.55, abs=0.03)
        assert fit.alpha == pytest.approx(2.2, abs=0.15)

    def test_needs_three_points(self):
        with pytest.raises(FittingError):
            fit_beta_alpha([50.0, 60.0], [10.0, 20.0], r_max=100.0,
                           p_coremax=150.0)

    def test_fit_quality_reported(self):
        caps, rates = synth_observations(beta=0.7, alpha=2.0, noise=0.05,
                                         n=10)
        fit = fit_beta_alpha(caps, rates, r_max=100.0, p_coremax=150.0)
        assert fit.n_points == 10
        assert fit.residual_rms >= 0.0
