"""Unit and property tests for the Eq. 1-7 progress model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.model import PowerCapModel
from repro.exceptions import ModelError


def make_model(beta=0.8, r_max=100.0, p_coremax=150.0, alpha=2.0):
    return PowerCapModel(beta=beta, r_max=r_max, p_coremax=p_coremax,
                         alpha=alpha)


class TestValidation:
    @pytest.mark.parametrize("beta", [-0.1, 1.1])
    def test_rejects_bad_beta(self, beta):
        with pytest.raises(ModelError):
            make_model(beta=beta)

    def test_rejects_nonpositive_rmax(self):
        with pytest.raises(ModelError):
            make_model(r_max=0.0)

    def test_rejects_nonpositive_pcoremax(self):
        with pytest.raises(ModelError):
            make_model(p_coremax=-1.0)

    def test_rejects_alpha_below_one(self):
        with pytest.raises(ModelError):
            make_model(alpha=0.5)


class TestEq1:
    def test_identity_at_fmax(self):
        assert make_model().time_ratio(3.3e9, 3.3e9) == pytest.approx(1.0)

    def test_compute_bound_inverse_scaling(self):
        m = make_model(beta=1.0)
        assert m.time_ratio(1.65e9, 3.3e9) == pytest.approx(2.0)

    def test_memory_bound_flat(self):
        m = make_model(beta=0.0)
        assert m.time_ratio(1.2e9, 3.3e9) == pytest.approx(1.0)

    def test_paper_values(self):
        # beta=0.52 at 1600 vs 3300 MHz: ratio = 0.52*(3.3/1.6-1)+1
        m = make_model(beta=0.52)
        expected = 0.52 * (3.3 / 1.6 - 1.0) + 1.0
        assert m.time_ratio(1.6e9, 3.3e9) == pytest.approx(expected)

    def test_rejects_f_above_fmax(self):
        with pytest.raises(ModelError):
            make_model().time_ratio(3.4e9, 3.3e9)


class TestEq4Progress:
    def test_uncapped_is_rmax(self):
        m = make_model()
        assert m.progress_at_core_power(150.0) == pytest.approx(100.0)

    def test_above_pcoremax_clamps(self):
        m = make_model()
        assert m.progress_at_core_power(500.0) == pytest.approx(100.0)

    def test_monotone_decreasing_with_tighter_cap(self):
        m = make_model()
        caps = [140.0, 120.0, 90.0, 60.0, 30.0]
        rates = [m.progress_at_core_power(c) for c in caps]
        assert rates == sorted(rates, reverse=True)

    def test_alpha2_half_power(self):
        """At half core power and beta=1, f ratio = sqrt(1/2) so progress
        ratio = sqrt(1/2)."""
        m = make_model(beta=1.0)
        r = m.progress_at_core_power(75.0)
        assert r / m.r_max == pytest.approx((0.5) ** 0.5)

    def test_memory_bound_insensitive(self):
        m = make_model(beta=0.0)
        assert m.progress_at_core_power(10.0) == pytest.approx(m.r_max)

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ModelError):
            make_model().progress_at_core_power(0.0)


class TestEq5Eq7:
    def test_effective_core_cap(self):
        m = make_model(beta=0.4)
        assert m.effective_core_cap(100.0) == pytest.approx(40.0)

    def test_delta_zero_when_cap_does_not_bind(self):
        m = make_model()
        assert m.delta_progress(200.0) == 0.0

    def test_delta_positive_when_binding(self):
        m = make_model()
        assert m.delta_progress(75.0) > 0.0

    def test_delta_composition(self):
        m = make_model(beta=0.5)
        assert m.delta_progress_at_package_cap(100.0) == pytest.approx(
            m.delta_progress(50.0)
        )

    def test_paper_eq7_consistency(self):
        """Eq. 7 equals r_max - Eq. 4 at the same core cap."""
        m = make_model(beta=0.7, alpha=2.0)
        cap = 60.0
        assert m.delta_progress(cap) == pytest.approx(
            m.r_max - m.progress_at_core_power(cap)
        )

    def test_fractional_slowdown_normalises_delta(self):
        m = make_model(beta=0.8)
        cap = 70.0
        assert m.slowdown_at_package_cap(cap) == pytest.approx(
            m.delta_progress_at_package_cap(cap) / m.r_max
        )
        # non-binding cap: no slowdown; binding cap: strictly in (0, 1)
        assert m.slowdown_at_package_cap(1000.0) == 0.0
        assert 0.0 < m.slowdown_at_package_cap(cap) < 1.0


class TestInverse:
    def test_roundtrip(self):
        m = make_model(beta=0.8)
        p = m.core_power_for_progress(70.0)
        assert m.progress_at_core_power(p) == pytest.approx(70.0)

    def test_full_rate_needs_full_power(self):
        m = make_model()
        assert m.core_power_for_progress(m.r_max) == pytest.approx(
            m.p_coremax
        )

    def test_package_cap_inverse(self):
        m = make_model(beta=0.5)
        cap = m.package_cap_for_progress(80.0)
        assert m.delta_progress_at_package_cap(cap) == pytest.approx(
            m.r_max - 80.0
        )

    def test_rejects_rate_above_rmax(self):
        with pytest.raises(ModelError):
            make_model().core_power_for_progress(101.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ModelError):
            make_model().core_power_for_progress(0.0)

    def test_beta_zero_has_no_inverse(self):
        with pytest.raises(ModelError):
            make_model(beta=0.0).core_power_for_progress(50.0)


@given(
    beta=st.floats(min_value=0.05, max_value=1.0),
    alpha=st.floats(min_value=1.0, max_value=4.0),
    frac=st.floats(min_value=0.05, max_value=1.0),
)
def test_progress_bounded_and_monotone(beta, alpha, frac):
    m = PowerCapModel(beta=beta, r_max=50.0, p_coremax=120.0, alpha=alpha)
    cap = 120.0 * frac
    r = m.progress_at_core_power(cap)
    assert 0.0 < r <= 50.0 + 1e-9
    # delta + progress == r_max exactly
    assert m.delta_progress(cap) + r == pytest.approx(50.0)


@given(
    beta=st.floats(min_value=0.1, max_value=1.0),
    alpha=st.floats(min_value=1.0, max_value=4.0),
    target=st.floats(min_value=1.0, max_value=49.9),
)
def test_inverse_roundtrip_property(beta, alpha, target):
    m = PowerCapModel(beta=beta, r_max=50.0, p_coremax=120.0, alpha=alpha)
    p = m.core_power_for_progress(target)
    assert m.progress_at_core_power(p) == pytest.approx(target, rel=1e-6)
