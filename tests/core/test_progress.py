"""Unit tests for trace characterization and the measurement protocol."""

import numpy as np
import pytest

from repro.core.progress import (
    TraceClass,
    classify_trace,
    steady_rate,
)
from repro.exceptions import ConfigurationError
from repro.telemetry.timeseries import TimeSeries


def series_from(values, t0=0.0):
    return TimeSeries("x", [(t0 + i, v) for i, v in enumerate(values)])


class TestSteadyRate:
    def test_trims_warmup(self):
        ts = series_from([1.0, 1.0, 10.0, 10.0, 10.0])
        assert steady_rate(ts, warmup=2.0) == pytest.approx(10.0)

    def test_trims_cooldown(self):
        ts = series_from([10.0, 10.0, 10.0, 1.0])
        assert steady_rate(ts, warmup=0.0, cooldown=1.5) == pytest.approx(10.0)

    def test_ignores_zeros_by_default(self):
        ts = series_from([10.0, 0.0, 10.0, 0.0, 10.0])
        assert steady_rate(ts, warmup=0.0) == pytest.approx(10.0)

    def test_keeps_zeros_when_asked(self):
        ts = series_from([10.0, 0.0, 10.0, 0.0])
        assert steady_rate(ts, warmup=0.0, ignore_zeros=False) == pytest.approx(5.0)

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            steady_rate(TimeSeries("x"))

    def test_overtrimmed_raises(self):
        ts = series_from([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            steady_rate(ts, warmup=10.0)


class TestClassifyTrace:
    def test_consistent(self):
        rng = np.random.default_rng(0)
        ts = series_from(100.0 + rng.normal(0, 0.5, size=40))
        c = classify_trace(ts)
        assert c.trace_class == TraceClass.CONSISTENT
        assert c.n_segments == 1

    def test_fluctuating(self):
        # AMG-style bucket quantization: oscillates between 2 and 3
        ts = series_from([3.0, 3.0, 2.0, 3.0, 3.0, 3.0, 2.0, 3.0, 2.0,
                          3.0, 3.0, 2.0, 3.0, 3.0])
        c = classify_trace(ts)
        assert c.trace_class == TraceClass.FLUCTUATING

    def test_phased(self):
        ts = series_from([25.0] * 10 + [20.0] * 10 + [16.0] * 10)
        c = classify_trace(ts)
        assert c.trace_class == TraceClass.PHASED
        assert c.n_segments == 3
        assert c.segment_rates[0] > c.segment_rates[1] > c.segment_rates[2]

    def test_zeros_excluded_from_classification(self):
        ts = series_from([10.0, 0.0, 10.0, 10.0, 0.0, 10.0, 10.0, 10.0])
        c = classify_trace(ts)
        assert c.trace_class == TraceClass.CONSISTENT

    def test_short_series_raises(self):
        with pytest.raises(ConfigurationError):
            classify_trace(series_from([1.0]))

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            classify_trace(TimeSeries("x"))
