"""Unit tests for the survey data and rule-based categorization."""

import pytest

from repro.core.categories import Category, OnlineMetric, categorize
from repro.core.survey import (
    QUESTIONS,
    RESPONSES,
    SurveyResponse,
    category_label,
    get_response,
)
from repro.exceptions import ConfigurationError


class TestQuestions:
    def test_eight_questions(self):
        assert len(QUESTIONS) == 8

    def test_first_question_is_fom(self):
        assert "FOM" in QUESTIONS[0]


class TestResponses:
    def test_all_nine_paper_apps_present(self):
        assert set(RESPONSES) == {
            "qmcpack", "openmc", "amg", "lammps", "candle", "stream",
            "urban", "nek5000", "hacc",
        }

    def test_answers_tuple_matches_question_count(self):
        for r in RESPONSES.values():
            assert len(r.answers()) == 8

    def test_get_response_unknown_app(self):
        with pytest.raises(ConfigurationError):
            get_response("doom")


class TestCategorize:
    def test_category_1_rule(self):
        r = SurveyResponse("x", True, True, True, True, True, True, False,
                           "compute")
        assert categorize(r) is Category.CATEGORY_1

    def test_category_2_rule(self):
        r = SurveyResponse("x", False, True, False, False, False, True,
                           False, "compute")
        assert categorize(r) is Category.CATEGORY_2

    def test_category_3_rule(self):
        r = SurveyResponse("x", False, False, False, False, False, False,
                           True, "compute")
        assert categorize(r) is Category.CATEGORY_3

    def test_describe_is_informative(self):
        for cat in Category:
            assert len(cat.describe()) > 10


class TestTableV:
    """The derived labels must reproduce the paper's Table V."""

    @pytest.mark.parametrize("app,expected", [
        ("qmcpack", "1"), ("openmc", "1"), ("amg", "2"), ("lammps", "1"),
        ("candle", "1/2"), ("stream", "1"), ("urban", "3"),
        ("nek5000", "3"), ("hacc", "3"),
    ])
    def test_labels(self, app, expected):
        assert category_label(app) == expected


class TestOnlineMetric:
    def test_str(self):
        m = OnlineMetric("Blocks per second", "blocks/s")
        assert str(m) == "Blocks per second"

    def test_default_per_iteration(self):
        assert OnlineMetric("x", "y").per_iteration == 1.0
