"""Shared helpers for the daemon test suite.

All daemon tests use the offline-measured demo power book
(:func:`repro.daemon.profiles.demo_book`) so no characterization runs
are paid; the simulated node pool underneath is real. Jobs are sized
in seconds of uncapped lammps progress, exactly like the scheduler
suite's fixtures.
"""

import pytest

from repro.daemon import protocol as proto
from repro.daemon.profiles import DEMO_LAMMPS_RATE, demo_book
from repro.daemon.service import Daemon, DaemonConfig
from repro.scheduler import SchedulerConfig


def make_daemon_config(**kwargs):
    sched_kwargs = dict(n_slots=4, power_budget=300.0, policy="backfill",
                        min_cap=45.0, cap_step=5.0, eco_margin=0.8,
                        n_workers=4, seed=1)
    sched_kwargs.update(kwargs.pop("scheduler_kwargs", {}))
    defaults = dict(scheduler=SchedulerConfig(**sched_kwargs))
    defaults.update(kwargs)
    return DaemonConfig(**defaults)


def make_daemon(**kwargs):
    return Daemon(make_daemon_config(**kwargs), demo_book())


def run_request(job_id, *, n_nodes=1, seconds=2.5, tol=None, priority=0):
    return proto.RunRequest(
        job_id=job_id, app_name="lammps", n_nodes=n_nodes,
        work_units=seconds * DEMO_LAMMPS_RATE, max_slowdown=tol,
        priority=priority, app_kwargs={"n_steps": 1_000_000})


def drain(daemon, max_epochs=500):
    """Tick until the cluster is idle; returns epochs taken."""
    total = 0
    while True:
        taken = daemon.tick(50)
        total += taken
        if taken == 0:
            return total
        assert total <= max_epochs, "daemon did not drain"


@pytest.fixture()
def daemon():
    d = make_daemon()
    yield d
    d.close()
