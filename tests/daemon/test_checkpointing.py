"""Daemon persistence: periodic checkpoints, crash resume, parity."""

import dataclasses
import pickle

import pytest

from repro.daemon import protocol as proto
from repro.daemon.checkpointing import (
    DAEMON_STATE_VERSION,
    load_checkpoint,
    resume_daemon,
    save_checkpoint,
)
from repro.exceptions import CheckpointError, ConfigurationError
from repro.runtime.runfile import CheckpointStore

from tests.daemon.conftest import drain, make_daemon, run_request

pytestmark = pytest.mark.slow

JOBS = [
    dict(job_id="eco2", n_nodes=2, seconds=3.0, tol=0.3),
    dict(job_id="rigid", n_nodes=1, seconds=2.0),
    dict(job_id="eco1", n_nodes=2, seconds=2.5, tol=0.25),
]


def submit_all(daemon):
    for spec in JOBS:
        spec = dict(spec)
        reply = daemon.handle(run_request(spec.pop("job_id"), **spec))
        assert isinstance(reply, proto.RunReply), reply


def final_statuses(daemon):
    return [daemon.handle(proto.StatusRequest(job_id=s["job_id"]))
            for s in JOBS]


class TestPeriodicCheckpoint:
    def test_written_at_cadence(self, tmp_path):
        path = tmp_path / "d.ckpt"
        daemon = make_daemon(checkpoint_every=2, checkpoint_path=str(path))
        try:
            submit_all(daemon)
            assert not path.exists()
            daemon.tick(2)
            assert path.exists()
            first = path.stat().st_mtime_ns
            daemon.tick(2)
            assert path.stat().st_mtime_ns >= first
        finally:
            daemon.close()

    def test_requires_path(self):
        with pytest.raises(ConfigurationError):
            make_daemon(checkpoint_every=2)

    def test_explicit_checkpoint_without_path_raises(self, daemon):
        with pytest.raises(ConfigurationError):
            daemon.checkpoint()


class TestResume:
    def test_crash_resume_matches_uninterrupted_run(self, tmp_path):
        path = tmp_path / "d.ckpt"
        daemon = make_daemon(checkpoint_every=2, checkpoint_path=str(path))
        submit_all(daemon)
        daemon.tick(3)  # periodic checkpoint fired at epoch 2
        daemon.close()  # "crash": epoch 3 is lost with the process

        resumed = resume_daemon(str(path))
        try:
            assert resumed.scheduler.now == 2.0
            assert resumed.epochs == 2
            drain(resumed)
            resumed_statuses = final_statuses(resumed)
        finally:
            resumed.close()

        control = make_daemon()
        try:
            submit_all(control)
            drain(control)
            control_statuses = final_statuses(control)
        finally:
            control.close()

        # bit-identical outcomes: same completion times, slowdowns,
        # progress — the resumed run is indistinguishable
        assert resumed_statuses == control_statuses

    def test_buffered_submissions_survive(self, tmp_path):
        path = tmp_path / "d.ckpt"
        daemon = make_daemon(checkpoint_path=str(path))
        submit_all(daemon)  # never ticked: all three still buffered
        daemon.handle(proto.ShutdownRequest())
        daemon.close()

        resumed = resume_daemon(str(path))
        try:
            assert len(resumed.handle(proto.ListRequest()).jobs) == 3
            drain(resumed)
            assert all(s.state == "completed"
                       for s in final_statuses(resumed))
        finally:
            resumed.close()

    def test_admission_sequence_continues(self, tmp_path):
        path = tmp_path / "d.ckpt"
        daemon = make_daemon(checkpoint_path=str(path))
        submit_all(daemon)
        daemon.checkpoint()
        daemon.close()
        resumed = resume_daemon(str(path))
        try:
            reply = resumed.handle(run_request("late"))
            assert reply.seq == len(JOBS)  # no seq reuse after resume
            dup = resumed.handle(run_request("rigid"))
            assert dup.code == "duplicate-job"
        finally:
            resumed.close()

    def test_shutdown_checkpoints_when_configured(self, tmp_path):
        path = tmp_path / "d.ckpt"
        daemon = make_daemon(checkpoint_path=str(path))
        try:
            reply = daemon.handle(proto.ShutdownRequest())
            assert reply == proto.ShutdownReply(checkpointed=True)
            assert path.exists()
        finally:
            daemon.close()

    def test_shutdown_without_path(self, daemon):
        assert daemon.handle(proto.ShutdownRequest()) == \
            proto.ShutdownReply(checkpointed=False)


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "nope.ckpt"))

    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(pickle.dumps({"hello": "world"}))
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_envelope_version_mismatch(self, tmp_path, daemon):
        path = tmp_path / "d.ckpt"
        save_checkpoint(daemon, str(path))
        checkpoint = load_checkpoint(str(path))
        stale = dataclasses.replace(checkpoint, version=99)
        path.write_bytes(pickle.dumps(stale))
        with pytest.raises(CheckpointError, match="99"):
            load_checkpoint(str(path))

    def test_state_version_mismatch(self, tmp_path, daemon):
        path = tmp_path / "d.ckpt"
        save_checkpoint(daemon, str(path))
        checkpoint = load_checkpoint(str(path))
        stale = dataclasses.replace(
            checkpoint,
            state={**checkpoint.state,
                   "version": DAEMON_STATE_VERSION + 1})
        path.write_bytes(pickle.dumps(stale))
        with pytest.raises(CheckpointError):
            resume_daemon(str(path))

    def test_wrong_kind_rejected(self, tmp_path, daemon):
        path = tmp_path / "d.ckpt"
        save_checkpoint(daemon, str(path))
        checkpoint = load_checkpoint(str(path))
        wrong = dataclasses.replace(checkpoint, kind="cluster")
        path.write_bytes(pickle.dumps(wrong))
        with pytest.raises(CheckpointError, match="cluster"):
            load_checkpoint(str(path))

    def test_atomic_write_leaves_no_temp_file(self, tmp_path, daemon):
        path = tmp_path / "d.ckpt"
        save_checkpoint(daemon, str(path))
        assert not (tmp_path / "d.ckpt.tmp").exists()


class TestRunStore:
    """The epoch-stamped ``checkpoint_dir`` store: periodic saves,
    latest-resume, and time travel (``--resume-epoch``)."""

    def test_interval_requires_dir(self):
        with pytest.raises(ConfigurationError):
            make_daemon(checkpoint_interval=2)

    def test_store_checkpoint_without_dir_raises(self, daemon):
        with pytest.raises(ConfigurationError):
            daemon.store_checkpoint()

    def test_epoch_stamped_files_accumulate(self, tmp_path):
        root = tmp_path / "store"
        daemon = make_daemon(checkpoint_interval=2,
                             checkpoint_dir=str(root))
        try:
            submit_all(daemon)
            daemon.tick(5)
            store = CheckpointStore(str(root), kind="daemon")
            assert store.epochs() == [2, 4]
        finally:
            daemon.close()

    def test_resume_latest_matches_uninterrupted(self, tmp_path):
        root = tmp_path / "store"
        daemon = make_daemon(checkpoint_interval=2,
                             checkpoint_dir=str(root))
        submit_all(daemon)
        daemon.tick(5)  # checkpoints at 2 and 4; epoch 5 is lost
        daemon.close()

        resumed = resume_daemon(str(root))
        try:
            assert resumed.epochs == 4
            drain(resumed)
            resumed_statuses = final_statuses(resumed)
        finally:
            resumed.close()

        control = make_daemon()
        try:
            submit_all(control)
            drain(control)
            assert resumed_statuses == final_statuses(control)
        finally:
            control.close()

    def test_rewind_to_earlier_epoch(self, tmp_path):
        root = tmp_path / "store"
        daemon = make_daemon(checkpoint_interval=2,
                             checkpoint_dir=str(root))
        submit_all(daemon)
        daemon.tick(6)
        daemon.close()

        rewound = resume_daemon(str(root), epoch=3)
        try:
            # newest checkpoint at-or-before 3 is epoch 2
            assert rewound.epochs == 2
            drain(rewound)
            rewound_statuses = final_statuses(rewound)
        finally:
            rewound.close()

        control = make_daemon()
        try:
            submit_all(control)
            drain(control)
            assert rewound_statuses == final_statuses(control)
        finally:
            control.close()

    def test_shutdown_writes_to_store(self, tmp_path):
        root = tmp_path / "store"
        daemon = make_daemon(checkpoint_dir=str(root))
        try:
            reply = daemon.handle(proto.ShutdownRequest())
            assert reply == proto.ShutdownReply(checkpointed=True)
            assert len(CheckpointStore(str(root), kind="daemon")) == 1
        finally:
            daemon.close()
