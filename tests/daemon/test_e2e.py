"""End-to-end acceptance tests over a real Unix-domain socket.

The ISSUE's bar: a daemon serving >= 4 concurrent clients against one
shared simulated cluster must (a) complete every job, (b) stream
progress that matches the equivalent batch
:class:`PowerAwareScheduler` run *bit-identically* (loss and latency
disabled), and (c) survive a kill + ``--resume`` from the last
periodic checkpoint with the remaining jobs finishing correctly.
"""

import threading

import pytest

from repro.daemon import protocol as proto
from repro.daemon.checkpointing import resume_daemon
from repro.daemon.client import DaemonClient
from repro.daemon.profiles import DEMO_LAMMPS_RATE, demo_book
from repro.daemon.server import DaemonServer
from repro.scheduler import Job, PowerAwareScheduler

from tests.daemon.conftest import drain, make_daemon, run_request

pytestmark = pytest.mark.slow

#: (job_id, n_nodes, seconds-of-uncapped-progress, tolerance)
WORKLOAD = [
    ("alpha", 2, 3.0, 0.30),
    ("bravo", 1, 2.0, None),
    ("charlie", 2, 2.5, 0.25),
    ("delta", 1, 3.5, None),
]


def start_server(daemon, tmp_path, name="repro.sock"):
    """Manual-mode server on a fresh UDS; returns (server, thread)."""
    path = str(tmp_path / name)
    server = DaemonServer(daemon, socket_path=path, pacer=None,
                          tick_wall=0.01)
    server.bind()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread, path


def submit_concurrently(path, workload):
    """One client thread per job, all submitting simultaneously.
    Returns {job_id: RunReply}."""
    barrier = threading.Barrier(len(workload))
    replies = {}

    def submit(job_id, n_nodes, seconds, tol):
        with DaemonClient(socket_path=path, timeout=30.0) as client:
            barrier.wait()
            replies[job_id] = client.run(
                job_id, "lammps", n_nodes=n_nodes,
                work_units=seconds * DEMO_LAMMPS_RATE,
                max_slowdown=tol,
                app_kwargs={"n_steps": 1_000_000})

    threads = [threading.Thread(target=submit, args=spec)
               for spec in workload]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(isinstance(r, proto.RunReply) for r in replies.values()), \
        replies
    return replies


def batch_equivalent(replies, workload):
    """The same workload on a plain batch scheduler, submitted in the
    daemon's admission order, capturing the identical per-epoch
    progress samples through the epoch listener."""
    order = sorted(workload, key=lambda spec: replies[spec[0]].seq)
    sched = PowerAwareScheduler(make_daemon().config.scheduler,
                                demo_book())
    samples = []
    sched.add_epoch_listener(
        lambda now, results: samples.extend(
            (now, f"progress/{job_id}/{node_id}", res.cumulative)
            for job_id, by_node in results.items()
            for node_id, res in by_node.items()))
    for job_id, n_nodes, seconds, tol in order:
        sched.submit(Job(
            job_id=job_id, app_name="lammps", n_nodes=n_nodes,
            work_units=seconds * DEMO_LAMMPS_RATE, submit_time=0.0,
            max_slowdown=tol, app_kwargs={"n_steps": 1_000_000}))
    sched.run()
    records = {job_id: sched.records[job_id]
               for job_id, *_ in workload}
    sched.close()
    return samples, records


class TestConcurrentClientsMatchBatch:
    def test_four_clients_one_cluster_bit_identical_stream(
            self, tmp_path):
        daemon = make_daemon()  # loss/latency disabled by default
        server, thread, path = start_server(daemon, tmp_path)
        try:
            with DaemonClient(socket_path=path, timeout=30.0) as watcher:
                watcher.watch("w", topic="progress", hwm=100_000,
                              events=False)
                replies = submit_concurrently(path, WORKLOAD)
                with DaemonClient(socket_path=path,
                                  timeout=30.0) as driver:
                    while True:
                        info = driver.info()
                        if info.queued == 0 and info.running == 0 and \
                                info.completed + info.killed == \
                                len(WORKLOAD):
                            break
                        driver.tick(5)
                    streamed = [
                        (f.time, f.topic, f.value)
                        for f in watcher.frames(wall_budget=30.0,
                                                idle=1.0)
                        if isinstance(f, proto.StreamTelemetry)
                    ]
                    statuses = {jid: driver.status(jid)
                                for jid, *_ in WORKLOAD}
                    driver.shutdown()
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
            daemon.close()

        assert all(s.state == "completed" for s in statuses.values())

        expected_samples, expected_records = batch_equivalent(
            replies, WORKLOAD)
        # every (epoch, node) progress value, in publish order,
        # bit-identical to the batch run
        assert streamed == expected_samples
        for job_id, record in expected_records.items():
            status = statuses[job_id]
            assert status.end_time == record.end_time
            assert status.measured_slowdown == record.measured_slowdown
            assert status.cap == record.cap


class TestKillAndResume:
    def test_resume_from_periodic_checkpoint_finishes_workload(
            self, tmp_path):
        ckpt = str(tmp_path / "daemon.ckpt")
        daemon = make_daemon(checkpoint_every=2, checkpoint_path=ckpt)
        server, thread, path = start_server(daemon, tmp_path)
        try:
            replies = submit_concurrently(path, WORKLOAD)
            with DaemonClient(socket_path=path, timeout=30.0) as driver:
                driver.tick(3)  # checkpoint fired at epoch 2
        finally:
            # hard kill: no shutdown request, no final checkpoint —
            # everything after epoch 2 dies with the server
            server.shutdown()
            thread.join(timeout=5.0)
            daemon.close()

        resumed = resume_daemon(ckpt)
        server2, thread2, path2 = start_server(resumed, tmp_path,
                                               name="resumed.sock")
        try:
            with DaemonClient(socket_path=path2, timeout=30.0) as c:
                assert c.info().now == 2.0
                while True:
                    info = c.info()
                    if info.queued == 0 and info.running == 0:
                        break
                    c.tick(10)
                statuses = {jid: c.status(jid) for jid, *_ in WORKLOAD}
                c.shutdown()
        finally:
            server2.shutdown()
            thread2.join(timeout=5.0)
            resumed.close()

        assert all(s.state == "completed" for s in statuses.values())
        # and the interrupted run's outcomes equal the batch run's
        _, expected_records = batch_equivalent(replies, WORKLOAD)
        for job_id, record in expected_records.items():
            assert statuses[job_id].end_time == record.end_time
            assert statuses[job_id].measured_slowdown == \
                record.measured_slowdown
