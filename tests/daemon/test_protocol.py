"""Wire-format tests: round trips, versioning, malformed input."""

import json

import pytest

from repro.daemon import protocol as proto
from repro.exceptions import ProtocolError

MESSAGES = [
    proto.RunRequest(job_id="j1", app_name="lammps", n_nodes=2,
                     work_units=8.9e5, max_slowdown=0.3, priority=2,
                     app_kwargs={"n_steps": 1_000_000}),
    proto.RunRequest(job_id="j2", app_name="stream", n_nodes=1,
                     work_units=1e4),
    proto.StatusRequest(job_id="j1"),
    proto.ListRequest(),
    proto.KillRequest(job_id="j1"),
    proto.WatchRequest(watch_id="w1", topic="progress/j1", hwm=16,
                       events=False),
    proto.TickRequest(epochs=7),
    proto.InfoRequest(),
    proto.ShutdownRequest(),
    proto.RunReply(job_id="j1", seq=3, state="pending"),
    proto.StatusReply(job_id="j1", state="running", n_nodes=2,
                      work_units=8.9e5, progress=1.25e5,
                      submit_time=0.0, start_time=1.0, end_time=None,
                      cap=55.0, measured_slowdown=None),
    proto.ListReply(now=4.0, jobs=[{"job_id": "j1", "state": "running",
                                    "app_name": "lammps", "n_nodes": 2,
                                    "priority": 0, "seq": 0}]),
    proto.KillReply(job_id="j1", was_running=True),
    proto.WatchReply(watch_id="w1", resumed=True),
    proto.TickReply(now=5.0, epochs=5, running=1, queued=2),
    proto.InfoReply(protocol=1, now=5.0, epochs=5, n_slots=4,
                    power_budget=300.0, policy="backfill", queued=0,
                    running=1, completed=2, killed=0),
    proto.ShutdownReply(checkpointed=True),
    proto.ErrorReply(code="queue-full", message="nope"),
    proto.StreamTelemetry(time=3.0, topic="progress/j1/0", value=2.5e5),
    proto.EventTelemetry(time=3.0, kind="JobStarted",
                         data={"job_id": "j1", "slots": [0, 1]}),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "message", MESSAGES, ids=[type(m).__name__ for m in MESSAGES])
    def test_encode_decode_identity(self, message):
        line = proto.encode(message)
        assert line.endswith(b"\n") and b"\n" not in line[:-1]
        assert proto.decode(line) == message

    def test_envelope_shape(self):
        envelope = json.loads(proto.encode(proto.ListRequest()))
        assert envelope == {"v": proto.PROTOCOL_VERSION,
                            "type": "list_request", "body": {}}

    def test_wire_type_names(self):
        assert proto.wire_type(proto.RunRequest) == "run_request"
        assert proto.wire_type(proto.StreamTelemetry) == \
            "stream_telemetry"

    def test_decode_accepts_str(self):
        message = proto.TickRequest(epochs=2)
        assert proto.decode(proto.encode(message).decode()) == message

    def test_defaults_fill_omitted_fields(self):
        line = json.dumps({"v": 1, "type": "watch_request",
                           "body": {"watch_id": "w1"}})
        decoded = proto.decode(line)
        assert decoded == proto.WatchRequest(watch_id="w1")


class TestEncodeErrors:
    def test_non_wire_type_rejected(self):
        with pytest.raises(ProtocolError):
            proto.encode({"not": "a message"})

    def test_nan_rejected(self):
        bad = proto.StreamTelemetry(time=0.0, topic="p",
                                    value=float("nan"))
        with pytest.raises(ProtocolError):
            proto.encode(bad)

    def test_unencodable_body_rejected(self):
        bad = proto.EventTelemetry(time=0.0, kind="X",
                                   data={"fn": lambda: None})
        with pytest.raises(ProtocolError):
            proto.encode(bad)


class TestDecodeErrors:
    @pytest.mark.parametrize("line", [
        b"not json\n",
        b"[1, 2]\n",
        b'{"type": "list_request", "body": {}}\n',          # no version
        b'{"v": 99, "type": "list_request", "body": {}}\n',  # wrong version
        b'{"v": 1, "type": "frob_request", "body": {}}\n',   # unknown type
        b'{"v": 1, "type": "list_request", "body": 3}\n',    # body not dict
        b'{"v": 1, "type": "tick_request", "body": {"bogus": 1}}\n',
        b'{"v": 1, "type": "kill_request", "body": {}}\n',   # missing field
    ])
    def test_malformed_lines_raise(self, line):
        with pytest.raises(ProtocolError):
            proto.decode(line)

    def test_version_mismatch_message_names_both_versions(self):
        with pytest.raises(ProtocolError, match="99"):
            proto.decode(b'{"v": 99, "type": "list_request", "body": {}}')
