"""The daemon stack under an active lock sanitizer.

These are the runtime half of the concurrency audit: the daemon and
server declare their lock discipline through :mod:`repro.sanitize`
(``Daemon._lock`` guards the admission/telemetry state,
``_ClientConn.wlock`` guards each connection's socket and watch set),
and these tests run real flows with a tracker active so any access
that escapes its lock fails the test. Removing a real guard — e.g. the
``with conn.wlock:`` around ``watch_ids.add`` in
``DaemonServer._serve_line`` — makes the end-to-end test below fail.
"""

import threading

import pytest

from repro import sanitize
from repro.daemon import protocol as proto
from repro.daemon.checkpointing import resume_daemon, save_checkpoint
from repro.daemon.client import DaemonClient
from repro.daemon.server import DaemonServer, _ClientConn
from repro.sanitize import GuardViolationError, LockTracker

from tests.daemon.conftest import drain, make_daemon, run_request

pytestmark = [pytest.mark.slow, pytest.mark.own_tracker]


@pytest.fixture()
def tracker():
    """A strict tracker active for the duration of one test."""
    with sanitize.active(LockTracker(strict=True)) as t:
        yield t


@pytest.fixture()
def lax_tracker():
    """A recording (non-raising) tracker for end-to-end flows."""
    with sanitize.active(LockTracker(strict=False)) as t:
        yield t


class TestDaemonGuards:
    def test_seq_write_requires_the_daemon_lock(self, tracker):
        daemon = make_daemon()
        try:
            with pytest.raises(GuardViolationError, match="_seq"):
                daemon._seq = 99
            with daemon._lock:
                daemon._seq = 99
            assert daemon._seq == 99
        finally:
            daemon.close()

    def test_buffer_mutation_requires_the_daemon_lock(self, tracker):
        daemon = make_daemon()
        try:
            with pytest.raises(GuardViolationError, match="_buffer"):
                daemon._buffer.append(object())
        finally:
            daemon.close()

    def test_handle_and_tick_hold_their_own_lock(self, tracker):
        # the public API is self-guarding: no caller-side locking
        daemon = make_daemon()
        try:
            reply = daemon.handle(run_request("alpha"))
            assert isinstance(reply, proto.RunReply)
            drain(daemon)
            assert tracker.violations == []
        finally:
            daemon.close()

    def test_checkpoint_resume_under_tracker(self, tracker, tmp_path):
        daemon = make_daemon()
        try:
            daemon.handle(run_request("alpha"))
            daemon.tick(2)
            path = str(tmp_path / "daemon.ckpt")
            save_checkpoint(daemon, path)
        finally:
            daemon.close()
        resumed = resume_daemon(path)
        try:
            drain(resumed)
            status = resumed.handle(proto.StatusRequest(job_id="alpha"))
            assert status.state == "completed"
            assert tracker.violations == []
        finally:
            resumed.close()


class TestConnGuards:
    def test_watch_ids_requires_wlock(self, tracker):
        conn = _ClientConn("client-0", sock=None)
        with pytest.raises(GuardViolationError, match="watch_ids"):
            conn.watch_ids.add("w1")
        with conn.wlock:
            conn.watch_ids.add("w1")
            assert "w1" in conn.watch_ids


class TestEndToEndClean:
    def test_tcp_run_watch_tick_shutdown_has_no_violations(
            self, lax_tracker):
        """The full client flow — connect, watch, submit, tick to
        completion, shutdown — recorded by a tracker. Every lock guard
        the audit added is load-bearing here: drop one (say the
        ``conn.wlock`` around ``watch_ids.add``) and the recorded
        guard violation fails this test."""
        daemon = make_daemon()
        server = DaemonServer(daemon, tcp=("127.0.0.1", 0), pacer=None,
                              tick_wall=0.01)
        address = server.bind()
        host, port = address.rsplit(":", 1)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            with DaemonClient(tcp=(host, int(port)),
                              timeout=30.0) as client:
                client.watch("w", topic="progress", hwm=100_000,
                             events=False)
                reply = client.run(
                    "alpha", "lammps", n_nodes=1,
                    work_units=run_request("alpha").work_units,
                    app_kwargs={"n_steps": 1_000_000})
                assert isinstance(reply, proto.RunReply)
                while True:
                    info = client.info()
                    if info.queued == 0 and info.running == 0:
                        break
                    client.tick(5)
                frames = client.frames(wall_budget=10.0, idle=0.5)
                assert any(isinstance(f, proto.StreamTelemetry)
                           for f in frames)
                client.shutdown()
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
        assert lax_tracker.violations == [], \
            lax_tracker.render_violations()
