"""Black-box smoke tests: the daemon and client as real processes.

These drive ``python -m repro.daemon`` / ``python -m repro.daemon.client``
exactly as an operator would — the CI daemon-smoke job runs this file.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.daemon.profiles import DEMO_LAMMPS_RATE

pytestmark = pytest.mark.slow

WORK = str(2.5 * DEMO_LAMMPS_RATE)
APP_KW = '{"n_steps": 1000000}'


def spawn_daemon(sock, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.daemon", "--socket", sock,
         "--book", "demo", "--manual", "--n-slots", "4",
         "--power-budget", "300", "--n-workers", "4", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    ready = process.stdout.readline()
    assert "ready" in ready, ready
    return process


def client(sock, *args, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    result = subprocess.run(
        [sys.executable, "-m", "repro.daemon.client", "--socket", sock,
         *args],
        capture_output=True, text=True, timeout=120, env=env)
    if check:
        assert result.returncode == 0, result.stderr or result.stdout
    return result


def json_lines(result):
    return [json.loads(line) for line in
            result.stdout.strip().splitlines() if line]


class TestCliSmoke:
    def test_submit_tick_status_shutdown(self, tmp_path):
        sock = str(tmp_path / "d.sock")
        daemon = spawn_daemon(sock)
        try:
            run = json_lines(client(
                sock, "run", "j1", "lammps", "--nodes", "2",
                "--work-units", WORK, "--max-slowdown", "0.3",
                "--app-kwargs", APP_KW))[0]
            assert (run["job_id"], run["state"]) == ("j1", "pending")

            client(sock, "run", "j2", "lammps", "--nodes", "1",
                   "--work-units", WORK, "--app-kwargs", APP_KW)

            # watch from a separate process while ticking to completion
            # stop at 6 progress frames (the workload produces more)
            # rather than on a quiet-window timer: subprocess spawns
            # under a loaded test host can outlast any idle window
            watcher = subprocess.Popen(
                [sys.executable, "-m", "repro.daemon.client",
                 "--socket", sock, "watch", "w1", "--no-events",
                 "--max-frames", "6", "--idle", "15.0",
                 "--wall-budget", "120"],
                stdout=subprocess.PIPE, text=True,
                env={**os.environ, "PYTHONPATH": "src"})
            # wait for the subscription to be live before any epoch
            # runs — a slow-joining watcher would miss the stream
            watch_reply = json.loads(watcher.stdout.readline())
            assert watch_reply["type"] == "watch_reply"

            for _ in range(20):
                info = json_lines(client(sock, "info"))[0]
                if info["queued"] == 0 and info["running"] == 0 and \
                        info["completed"] == 2:
                    break
                client(sock, "tick", "5")
            else:
                pytest.fail("jobs never completed")

            for job_id in ("j1", "j2"):
                status = json_lines(client(sock, "status", job_id))[0]
                assert status["state"] == "completed"
                assert status["progress"] == status["work_units"]

            listed = json_lines(client(sock, "list"))[0]
            assert len(listed["jobs"]) == 2

            watch_out, _ = watcher.communicate(timeout=90)
            frames = [json.loads(line) for line in
                      watch_out.strip().splitlines()]
            telemetry = [f for f in frames
                         if f["type"] == "stream_telemetry"]
            assert telemetry, "telemetry stream was empty"
            assert all(f["topic"].startswith("progress/")
                       for f in telemetry)

            shut = json_lines(client(sock, "shutdown"))[0]
            assert shut["type"] == "shutdown_reply"
            assert daemon.wait(timeout=30) == 0
        finally:
            if daemon.poll() is None:
                daemon.kill()

    def test_error_reply_exits_nonzero(self, tmp_path):
        sock = str(tmp_path / "d.sock")
        daemon = spawn_daemon(sock)
        try:
            result = client(sock, "status", "ghost", check=False)
            assert result.returncode == 1
            assert "unknown-job" in result.stderr
            client(sock, "shutdown")
            daemon.wait(timeout=30)
        finally:
            if daemon.poll() is None:
                daemon.kill()

    def test_kill_then_resume_from_checkpoint(self, tmp_path):
        sock = str(tmp_path / "d.sock")
        ckpt = str(tmp_path / "d.ckpt")
        daemon = spawn_daemon(sock, "--checkpoint", ckpt,
                              "--checkpoint-every", "2")
        try:
            for i in range(3):
                client(sock, "run", f"j{i}", "lammps", "--nodes", "1",
                       "--work-units", WORK, "--app-kwargs", APP_KW)
            client(sock, "tick", "3")  # periodic checkpoint at epoch 2
            assert os.path.exists(ckpt)
        finally:
            daemon.kill()  # hard kill: no shutdown checkpoint
            daemon.wait(timeout=30)

        resumed = spawn_daemon(sock, "--checkpoint", ckpt, "--resume")
        try:
            info = json_lines(client(sock, "info"))[0]
            assert info["now"] == 2.0
            for _ in range(20):
                info = json_lines(client(sock, "info"))[0]
                if info["queued"] == 0 and info["running"] == 0:
                    break
                client(sock, "tick", "5")
            assert info["completed"] == 3
            client(sock, "shutdown")
            resumed.wait(timeout=30)
        finally:
            if resumed.poll() is None:
                resumed.kill()
