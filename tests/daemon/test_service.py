"""Daemon core tests: admission (including under thread contention),
lifecycle, telemetry fan-out, and determinism."""

import threading

import pytest

from repro.daemon import protocol as proto
from repro.scheduler import JobState

from tests.daemon.conftest import (
    drain,
    make_daemon,
    make_daemon_config,
    run_request,
)

pytestmark = pytest.mark.slow


class TestAdmission:
    def test_run_reply_carries_sequence(self, daemon):
        r1 = daemon.handle(run_request("a"))
        r2 = daemon.handle(run_request("b"))
        assert isinstance(r1, proto.RunReply) and r1.seq == 0
        assert r2.seq == 1
        assert r1.state == "pending"

    def test_duplicate_job_rejected(self, daemon):
        daemon.handle(run_request("a"))
        reply = daemon.handle(run_request("a"))
        assert isinstance(reply, proto.ErrorReply)
        assert reply.code == "duplicate-job"

    def test_queue_full_typed_rejection(self):
        daemon = make_daemon(queue_capacity=2)
        try:
            assert isinstance(daemon.handle(run_request("a")),
                              proto.RunReply)
            assert isinstance(daemon.handle(run_request("b")),
                              proto.RunReply)
            reply = daemon.handle(run_request("c"))
            assert isinstance(reply, proto.ErrorReply)
            assert reply.code == "queue-full"
        finally:
            daemon.close()

    def test_inadmissible_job_rejected_at_boundary(self, daemon):
        reply = daemon.handle(run_request("big", n_nodes=99))
        assert isinstance(reply, proto.ErrorReply)
        assert reply.code == "inadmissible"
        # the rejection left no trace: the id is reusable
        assert isinstance(daemon.handle(run_request("big")),
                          proto.RunReply)

    def test_impossible_power_demand_rejected(self):
        daemon = make_daemon(
            scheduler_kwargs=dict(power_budget=50.0, min_cap=55.0))
        try:
            reply = daemon.handle(run_request("hungry", tol=0.3))
            assert isinstance(reply, proto.ErrorReply)
            assert reply.code == "inadmissible"
        finally:
            daemon.close()

    def test_malformed_job_is_bad_request(self, daemon):
        reply = daemon.handle(proto.RunRequest(
            job_id="x", app_name="lammps", n_nodes=0, work_units=1e5))
        assert isinstance(reply, proto.ErrorReply)
        assert reply.code == "bad-request"

    def test_non_request_object_is_bad_request(self, daemon):
        reply = daemon.handle(proto.RunReply(job_id="x", seq=0,
                                             state="pending"))
        assert isinstance(reply, proto.ErrorReply)
        assert reply.code == "bad-request"


class TestConcurrentAdmission:
    """The ISSUE's concurrency contract: N threads submitting at once
    lose nothing, duplicate nothing, and drain FIFO per priority."""

    N_THREADS = 8
    PER_THREAD = 4

    def _submit_storm(self, daemon, priority_of):
        barrier = threading.Barrier(self.N_THREADS)
        replies = {}

        def worker(t):
            barrier.wait()
            for i in range(self.PER_THREAD):
                job_id = f"t{t}-{i}"
                replies[job_id] = daemon.handle(
                    run_request(job_id, seconds=2.5,
                                priority=priority_of(t, i)))

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(self.N_THREADS)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        return replies

    def test_no_lost_or_duplicated_submissions(self):
        daemon = make_daemon(queue_capacity=64)
        try:
            replies = self._submit_storm(daemon, lambda t, i: 0)
            assert all(isinstance(r, proto.RunReply)
                       for r in replies.values())
            seqs = sorted(r.seq for r in replies.values())
            assert seqs == list(range(self.N_THREADS * self.PER_THREAD))
            listed = daemon.handle(proto.ListRequest())
            assert len(listed.jobs) == self.N_THREADS * self.PER_THREAD
            assert len({j["job_id"] for j in listed.jobs}) == len(
                listed.jobs)
        finally:
            daemon.close()

    def test_fifo_within_priority_across_threads(self):
        daemon = make_daemon(queue_capacity=64)
        try:
            # threads 0-3 submit priority 0, threads 4-7 priority 5
            replies = self._submit_storm(
                daemon, lambda t, i: 5 if t >= 4 else 0)
            daemon.tick(1)  # admit the buffer into the scheduler
            submitted = [e.job_id for e in daemon.scheduler.events
                         if type(e).__name__ == "JobSubmitted"]
            by_seq = {jid: replies[jid].seq for jid in submitted}
            high = [jid for jid in submitted
                    if jid.startswith(("t4", "t5", "t6", "t7"))]
            low = [jid for jid in submitted if jid not in set(high)]
            # all high-priority jobs entered the scheduler first ...
            assert submitted[:len(high)] == high
            # ... and each band is FIFO in admission-sequence order
            assert [by_seq[j] for j in high] == sorted(
                by_seq[j] for j in high)
            assert [by_seq[j] for j in low] == sorted(
                by_seq[j] for j in low)
        finally:
            daemon.close()

    def test_capacity_enforced_under_contention(self):
        capacity = 10
        daemon = make_daemon(queue_capacity=capacity)
        try:
            replies = self._submit_storm(daemon, lambda t, i: 0)
            accepted = [r for r in replies.values()
                        if isinstance(r, proto.RunReply)]
            rejected = [r for r in replies.values()
                        if isinstance(r, proto.ErrorReply)]
            assert len(accepted) == capacity
            assert len(rejected) == \
                self.N_THREADS * self.PER_THREAD - capacity
            assert {r.code for r in rejected} == {"queue-full"}
            # the accepted set still runs to completion
            drain(daemon)
            info = daemon.handle(proto.InfoRequest())
            assert info.completed == capacity
        finally:
            daemon.close()


class TestLifecycle:
    def test_jobs_complete_and_report(self, daemon):
        daemon.handle(run_request("eco", n_nodes=2, tol=0.3))
        daemon.handle(run_request("rigid", n_nodes=1))
        drain(daemon)
        for job_id in ("eco", "rigid"):
            status = daemon.handle(proto.StatusRequest(job_id=job_id))
            assert status.state == "completed"
            assert status.progress == status.work_units
            assert status.end_time > 0.0
        eco = daemon.handle(proto.StatusRequest(job_id="eco"))
        assert eco.cap is not None and eco.measured_slowdown <= 0.3

    def test_status_of_unknown_job(self, daemon):
        reply = daemon.handle(proto.StatusRequest(job_id="ghost"))
        assert reply.code == "unknown-job"

    def test_kill_buffered_job(self, daemon):
        daemon.handle(run_request("doomed"))
        reply = daemon.handle(proto.KillRequest(job_id="doomed"))
        assert reply == proto.KillReply(job_id="doomed",
                                        was_running=False)
        status = daemon.handle(proto.StatusRequest(job_id="doomed"))
        assert status.state == JobState.KILLED.value
        assert daemon.tick(5) == 0  # nothing ever entered the scheduler

    def test_kill_running_job_frees_slots(self, daemon):
        daemon.handle(run_request("victim", n_nodes=4, seconds=50.0))
        daemon.handle(run_request("heir", n_nodes=4, seconds=2.5))
        daemon.tick(2)
        reply = daemon.handle(proto.KillRequest(job_id="victim"))
        assert reply.was_running
        drain(daemon)
        assert daemon.handle(
            proto.StatusRequest(job_id="heir")).state == "completed"

    def test_kill_completed_job_is_not_active(self, daemon):
        daemon.handle(run_request("done"))
        drain(daemon)
        reply = daemon.handle(proto.KillRequest(job_id="done"))
        assert reply.code == "not-active"

    def test_kill_unknown_job(self, daemon):
        assert daemon.handle(
            proto.KillRequest(job_id="ghost")).code == "unknown-job"

    def test_info_counts(self, daemon):
        daemon.handle(run_request("a"))
        daemon.handle(run_request("b"))
        daemon.handle(proto.KillRequest(job_id="b"))
        drain(daemon)
        info = daemon.handle(proto.InfoRequest())
        assert (info.completed, info.killed, info.queued,
                info.running) == (1, 1, 0, 0)
        assert info.protocol == proto.PROTOCOL_VERSION

    def test_idle_daemon_time_stands_still(self, daemon):
        assert daemon.tick(10) == 0
        assert daemon.scheduler.now == 0.0


class TestWatch:
    def test_progress_frames_per_node_per_epoch(self, daemon):
        daemon.handle(proto.WatchRequest(watch_id="w", topic="progress",
                                         events=False))
        daemon.handle(run_request("j", n_nodes=2, seconds=3.5))
        taken = daemon.tick(2)
        frames = daemon.drain_watch("w")
        assert len(frames) == 2 * taken  # two nodes, one frame each
        topics = {f.topic for f in frames}
        assert topics == {"progress/j/0", "progress/j/1"}
        assert all(isinstance(f, proto.StreamTelemetry) for f in frames)
        # cumulative progress is non-decreasing per node
        per_node = [f.value for f in frames if f.topic.endswith("/0")]
        assert per_node == sorted(per_node)

    def test_event_side_channel(self, daemon):
        daemon.handle(proto.WatchRequest(watch_id="w", events=True))
        daemon.handle(run_request("j", seconds=2.5))
        drain(daemon)
        kinds = [f.kind for f in daemon.drain_watch("w")
                 if isinstance(f, proto.EventTelemetry)]
        assert kinds[0] == "JobSubmitted"
        assert "JobStarted" in kinds and "JobCompleted" in kinds

    def test_late_watcher_is_slow_joiner(self, daemon):
        daemon.handle(run_request("j", seconds=4.5))
        daemon.tick(2)
        daemon.handle(proto.WatchRequest(watch_id="late",
                                         events=False))
        daemon.tick(1)
        frames = daemon.drain_watch("late")
        # only the epoch after joining is seen
        assert {f.time for f in frames} == {3.0}

    def test_hwm_bounds_undrained_watcher(self, daemon):
        daemon.handle(proto.WatchRequest(watch_id="w", hwm=2,
                                         events=False))
        daemon.handle(run_request("j", seconds=6.5))
        daemon.tick(5)  # 5 epochs published, queue holds 2
        frames = daemon.drain_watch("w")
        assert len(frames) == 2

    def test_detach_then_reconnect_loses_interim(self, daemon):
        daemon.handle(proto.WatchRequest(watch_id="w", events=False))
        daemon.handle(run_request("j", seconds=6.5))
        daemon.tick(1)
        daemon.detach_watch("w")
        daemon.tick(2)  # published into the void
        reply = daemon.handle(proto.WatchRequest(watch_id="w"))
        assert reply == proto.WatchReply(watch_id="w", resumed=True)
        daemon.tick(1)
        frames = daemon.drain_watch("w")
        assert {f.time for f in frames} == {4.0}

    def test_attached_watch_id_is_busy(self, daemon):
        daemon.handle(proto.WatchRequest(watch_id="w"))
        reply = daemon.handle(proto.WatchRequest(watch_id="w"))
        assert reply.code == "bad-request"

    def test_modelled_delay_postpones_delivery(self):
        daemon = make_daemon(telemetry_delay=2.0)
        try:
            daemon.handle(proto.WatchRequest(watch_id="w",
                                             events=False))
            daemon.handle(run_request("j", seconds=4.5))
            daemon.tick(1)
            assert daemon.drain_watch("w") == []  # still in flight
            daemon.tick(2)  # clock reaches publish time + delay
            frames = daemon.drain_watch("w")
            assert [f.time for f in frames] == [1.0]
        finally:
            daemon.close()

    def test_seeded_loss_drops_frames(self):
        daemon = make_daemon(telemetry_drop=0.5, telemetry_seed=3)
        try:
            daemon.handle(proto.WatchRequest(watch_id="w",
                                             events=False))
            daemon.handle(run_request("j", n_nodes=2, seconds=20.0))
            daemon.tick(15)
            got = len(daemon.drain_watch("w"))
            # 2 nodes x 15 epochs = 30 progress publishes; half survive
            assert got < 30
            assert daemon.bus.dropped > 0
            assert got + daemon.bus.dropped <= daemon.bus.published
        finally:
            daemon.close()


class TestDeterminism:
    def test_same_command_log_same_stream(self):
        def run_once():
            daemon = make_daemon()
            try:
                daemon.handle(proto.WatchRequest(watch_id="w"))
                daemon.handle(run_request("a", n_nodes=2, tol=0.3,
                                          seconds=3.5))
                daemon.handle(run_request("b", seconds=2.5))
                frames = []
                while daemon.tick(3):
                    frames.extend(daemon.drain_watch("w"))
                frames.extend(daemon.drain_watch("w"))
                events = [(type(e).__name__, e.time)
                          for e in daemon.scheduler.events]
                return frames, events
            finally:
                daemon.close()

        first, second = run_once(), run_once()
        assert first == second
