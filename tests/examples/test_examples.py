"""Smoke tests for the example scripts.

Every example must at least compile and expose ``main``; the two
fastest ones are executed end-to-end (the heavier ones are exercised by
the equivalent experiment/benchmark code paths).
"""

import importlib.util
import pathlib
import sys

import pytest

pytestmark = pytest.mark.slow

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        assert ALL_EXAMPLES == [
            "autonomous_nrm.py",
            "budget_hierarchy.py",
            "cluster_variability.py",
            "model_fit_and_budget.py",
            "phase_aware_capping.py",
            "power_policy_daemon.py",
            "progress_monitoring.py",
            "quickstart.py",
        ]

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_compiles_and_has_main(self, name):
        module = load_example(name)
        assert callable(module.main)
        assert module.__doc__ and "Usage" in module.__doc__

    def test_quickstart_runs(self, capsys):
        load_example("quickstart.py").main()
        out = capsys.readouterr().out
        assert "uncapped:" in out
        assert "model-predicted change" in out

    def test_budget_hierarchy_runs(self, capsys):
        load_example("budget_hierarchy.py").main()
        out = capsys.readouterr().out
        assert "HIGH-PRIORITY job admitted" in out
        assert "progress during the squeeze" in out
