"""Tests for the ``python -m repro.experiments`` entry point."""

import pytest

from repro.experiments.__main__ import _EXPERIMENTS, main


class TestCli:
    def test_every_table_and_figure_registered(self):
        expected = {f"table{i}" for i in range(1, 7)} \
            | {f"figure{i}" for i in range(1, 6)} \
            | {"ext-energy", "ext-techniques", "ext-intrusiveness",
               "extension_scheduler"}
        assert set(_EXPERIMENTS) == expected

    def test_cheap_experiment_prints_render(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "regenerated in" in out

    def test_table5_derivation_through_cli(self, capsys):
        main(["table5"])
        assert "matches the paper's Table V" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_quick_flag_accepted(self, capsys):
        assert main(["table1", "--quick", "--seed", "3"]) == 0
        assert "MIPS" in capsys.readouterr().out

    def test_list_flag_prints_every_name(self, capsys):
        assert main(["--list"]) == 0
        listed = capsys.readouterr().out.split()
        assert listed == sorted(_EXPERIMENTS)

    def test_missing_name_without_list_rejected(self):
        with pytest.raises(SystemExit):
            main([])
