"""Tests for the ``python -m repro.experiments`` entry point."""

import pytest

from repro.experiments.__main__ import _EXPERIMENTS, main


class TestCli:
    def test_every_table_and_figure_registered(self):
        expected = {f"table{i}" for i in range(1, 7)} \
            | {f"figure{i}" for i in range(1, 6)} \
            | {"ext-energy", "ext-techniques", "ext-intrusiveness",
               "extension_scheduler"}
        assert set(_EXPERIMENTS) == expected

    def test_cheap_experiment_prints_render(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "regenerated in" in out

    def test_table5_derivation_through_cli(self, capsys):
        main(["table5"])
        assert "matches the paper's Table V" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_quick_flag_accepted(self, capsys):
        assert main(["table1", "--quick", "--seed", "3"]) == 0
        assert "MIPS" in capsys.readouterr().out

    def test_list_flag_prints_every_name(self, capsys):
        assert main(["--list"]) == 0
        listed = capsys.readouterr().out.split()
        assert listed == sorted(_EXPERIMENTS)

    def test_missing_name_without_list_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestObservabilityFlags:
    def test_trace_metrics_and_manifest_written(self, tmp_path, capsys):
        import json

        from repro import obs

        trace = tmp_path / "run.json"
        metrics = tmp_path / "metrics.json"
        manifest = tmp_path / "manifest.json"
        assert main(["table3", "--seed", "2",
                     "--trace", str(trace),
                     "--metrics-out", str(metrics),
                     "--manifest-out", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert f"-> {trace} (chrome)" in out

        doc = json.loads(trace.read_text())
        names = [ev["name"] for ev in doc["traceEvents"]]
        assert "experiment.table3" in names
        assert json.loads(metrics.read_text())["metrics"] is not None

        m = json.loads(manifest.read_text())
        assert m["experiment"] == "table3"
        assert m["config"]["seed"] == 2
        assert m["trace"]["path"] == str(trace)
        assert m["wall_time_s"] >= 0
        # the CLI turns observability off again on the way out
        assert obs.enabled() is False

    def test_jsonl_trace_extension_selects_jsonl(self, tmp_path, capsys):
        import json

        trace = tmp_path / "run.jsonl"
        assert main(["table3", "--trace", str(trace)]) == 0
        assert f"-> {trace} (jsonl)" in capsys.readouterr().out
        first = trace.read_text().splitlines()[0]
        assert json.loads(first)["ph"] in ("X", "i")

    def test_rendered_output_identical_with_tracing(self, tmp_path,
                                                    capsys):
        assert main(["table3"]) == 0
        plain = capsys.readouterr().out
        assert main(["table3", "--trace", str(tmp_path / "t.json")]) == 0
        traced = capsys.readouterr().out

        def render_block(out):
            return out[:out.index("regenerated in")]

        assert render_block(traced) == render_block(plain)

    def test_no_cache_activity_prints_no_cache_line(self, capsys):
        assert main(["table3"]) == 0
        assert "executor cache:" not in capsys.readouterr().out
