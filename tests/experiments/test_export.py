"""Tests for CSV export of experiment results."""

import csv

import pytest

from repro.core.errors import summarize_errors
from repro.exceptions import ConfigurationError
from repro.experiments.export import (
    figure4_to_csv,
    figure5_to_csv,
    series_to_csv,
)
from repro.experiments.figure4 import Figure4Panel, Figure4Result
from repro.experiments.figure5 import Figure5Result, TechniquePoint
from repro.experiments.harness import DeltaMeasurement
from repro.telemetry.timeseries import TimeSeries


def read_csv(path):
    with open(path, newline="") as fh:
        return list(csv.reader(fh))


class TestSeriesToCsv:
    def test_roundtrip(self, tmp_path):
        ts = TimeSeries("x", [(1.0, 2.5), (2.0, 3.5)])
        path = series_to_csv(ts, tmp_path / "s.csv", value_name="watts")
        rows = read_csv(path)
        assert rows[0] == ["time_s", "watts"]
        assert rows[1] == ["1.0", "2.5"]
        assert len(rows) == 3

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            series_to_csv(TimeSeries("x"), tmp_path / "s.csv")

    def test_creates_parent_dirs(self, tmp_path):
        ts = TimeSeries("x", [(0.0, 1.0)])
        path = series_to_csv(ts, tmp_path / "a" / "b" / "s.csv")
        assert read_csv(path)


class TestFigureCsv:
    def _panel(self):
        measurements = (
            DeltaMeasurement(p_cap=100.0, p_corecap=80.0, delta_mean=5.0,
                             delta_std=0.5, r_uncapped=50.0, repeats=3),
            DeltaMeasurement(p_cap=80.0, p_corecap=64.0, delta_mean=9.0,
                             delta_std=0.6, r_uncapped=50.0, repeats=3),
        )
        return Figure4Panel(
            app="toy", beta=0.8, alpha=2.0, r_max=50.0, p_coremax=120.0,
            measurements=measurements, predictions=(5.5, 8.7),
            errors=summarize_errors([5.5, 8.7], [5.0, 9.0]),
        )

    def test_figure4_long_format(self, tmp_path):
        result = Figure4Result(panels=(self._panel(),))
        rows = read_csv(figure4_to_csv(result, tmp_path / "f4.csv"))
        assert rows[0][0] == "app"
        assert len(rows) == 3
        assert rows[1][0] == "toy"
        assert float(rows[1][7]) == 5.0    # delta_measured
        assert float(rows[2][10]) == 8.7   # delta_predicted

    def test_figure5_long_format(self, tmp_path):
        result = Figure5Result(
            dvfs=(TechniquePoint("dvfs", 3.3e9, 150.0, 16.0),),
            rapl=(TechniquePoint("rapl", 100.0, 98.0, 14.0),),
        )
        rows = read_csv(figure5_to_csv(result, tmp_path / "f5.csv"))
        assert len(rows) == 3
        assert rows[1][0] == "dvfs"
        assert rows[2][0] == "rapl"
