"""Unit tests for the extension experiments' pure result types."""

import pytest

from repro.experiments.extension_energy import EnergyPoint, EnergyResult
from repro.experiments.extension_techniques import TechniquesResult
from repro.experiments.figure5 import TechniquePoint


class TestEnergyResult:
    def _result(self):
        points = (
            EnergyPoint(cap=None, seconds=10.0, joules=2000.0, edp=20000.0),
            EnergyPoint(cap=100.0, seconds=12.0, joules=1500.0, edp=18000.0),
            EnergyPoint(cap=70.0, seconds=16.0, joules=1400.0, edp=22400.0),
        )
        return EnergyResult(points={"app": points})

    def test_min_energy_cap(self):
        assert self._result().min_energy_cap("app") == 70.0

    def test_energy_saving(self):
        assert self._result().energy_saving_at_min("app") == pytest.approx(
            1 - 1400.0 / 2000.0
        )

    def test_slowdown_at_min_energy(self):
        assert self._result().slowdown_at_min_energy("app") == pytest.approx(
            0.6
        )

    def test_uncapped_can_be_min(self):
        points = (
            EnergyPoint(cap=None, seconds=10.0, joules=1000.0, edp=1.0),
            EnergyPoint(cap=100.0, seconds=20.0, joules=2000.0, edp=2.0),
        )
        r = EnergyResult(points={"a": points})
        assert r.min_energy_cap("a") is None
        assert r.energy_saving_at_min("a") == pytest.approx(0.0)


class TestTechniquesResult:
    def _result(self):
        def pts(tech, triples):
            return tuple(TechniquePoint(tech, s, p, r)
                         for s, p, r in triples)

        return TechniquesResult(curves={
            "app": {
                "dvfs": pts("dvfs", [(3e9, 150.0, 10.0), (1e9, 50.0, 5.0)]),
                "ddcm": pts("ddcm", [(1.0, 160.0, 10.0), (0.5, 60.0, 4.0)]),
                "rapl": pts("rapl", [(150.0, 140.0, 9.5), (50.0, 45.0, 4.5)]),
            }
        })

    def test_progress_interpolation(self):
        r = self._result()
        assert r.progress_at("app", "dvfs", 100.0) == pytest.approx(7.5)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            self._result().progress_at("app", "dvfs", 10.0)

    def test_common_power_range(self):
        lo, hi = self._result().common_power_range("app")
        assert lo == pytest.approx(60.0)   # ddcm's floor is highest
        assert hi == pytest.approx(140.0)  # rapl's ceiling is lowest
