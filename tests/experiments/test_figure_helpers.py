"""Unit tests for the figure modules' pure helpers (no simulation)."""

import math

import pytest

from repro.experiments.figure2 import Figure2Result
from repro.experiments.figure3 import Figure3Cell, Figure3Result
from repro.experiments.figure5 import Figure5Result, TechniquePoint
from repro.telemetry.timeseries import TimeSeries


def series(pairs):
    return TimeSeries("x", pairs)


class TestFigure2Result:
    def test_compute_bound_always_faster_true(self):
        r = Figure2Result(caps=(100.0, 80.0),
                          frequency_ghz={"lammps": (3.0, 2.5),
                                         "stream": (2.8, 2.5)})
        assert r.compute_bound_always_faster()

    def test_compute_bound_always_faster_false(self):
        r = Figure2Result(caps=(100.0,),
                          frequency_ghz={"lammps": (2.0,),
                                         "stream": (2.8,)})
        assert not r.compute_bound_always_faster()


class TestFigure3Cell:
    def _cell(self, cap_pairs, prog_pairs):
        return Figure3Cell(app="a", scheme="s", cap=series(cap_pairs),
                           progress=series(prog_pairs))

    def test_perfect_correlation(self):
        cap = [(float(i), 100.0 + i) for i in range(30)]
        prog = [(float(i), 10.0 + 0.1 * i) for i in range(30)]
        cell = self._cell(cap, prog)
        assert cell.cap_progress_correlation() == pytest.approx(1.0, abs=0.01)

    def test_anticorrelation(self):
        cap = [(float(i), 100.0 + i) for i in range(30)]
        prog = [(float(i), 10.0 - 0.1 * i) for i in range(30)]
        cell = self._cell(cap, prog)
        assert cell.cap_progress_correlation() < -0.95

    def test_too_few_samples_nan(self):
        cell = self._cell([(0.0, 1.0)], [(0.0, 1.0)])
        assert math.isnan(cell.cap_progress_correlation())

    def test_constant_series_nan(self):
        cap = [(float(i), 100.0) for i in range(30)]
        prog = [(float(i), 5.0) for i in range(30)]
        assert math.isnan(self._cell(cap, prog).cap_progress_correlation())

    def test_zero_glitch_detection(self):
        cell = self._cell([(0.0, 1.0)], [(0.0, 5.0), (1.0, 0.0)])
        assert cell.has_zero_glitches()
        cell2 = self._cell([(0.0, 1.0)], [(0.0, 5.0)])
        assert not cell2.has_zero_glitches()

    def test_result_cell_lookup(self):
        cell = self._cell([(0.0, 1.0)], [(0.0, 1.0)])
        result = Figure3Result(cells=(cell,))
        assert result.cell("a", "s") is cell
        with pytest.raises(KeyError):
            result.cell("a", "other")


class TestFigure5Result:
    def _result(self):
        dvfs = tuple(
            TechniquePoint("dvfs", s, p, r)
            for s, p, r in [(3.3e9, 150.0, 16.0), (2.0e9, 80.0, 13.0),
                            (1.2e9, 50.0, 10.0)]
        )
        rapl = tuple(
            TechniquePoint("rapl", s, p, r)
            for s, p, r in [(150.0, 145.0, 15.8), (80.0, 78.0, 12.0),
                            (45.0, 44.0, 6.0)]
        )
        return Figure5Result(dvfs=dvfs, rapl=rapl)

    def test_overlap_range(self):
        lo, hi = self._result().overlap_range()
        assert lo == pytest.approx(50.0)
        assert hi == pytest.approx(145.0)

    def test_advantage_interpolates(self):
        r = self._result()
        adv = r.dvfs_advantage_at(80.0)
        # dvfs at 80 W is exactly 13.0; rapl interpolates between
        # (78 W, 12.0) and (145 W, 15.8)
        rapl_at_80 = 12.0 + (15.8 - 12.0) * (80.0 - 78.0) / (145.0 - 78.0)
        assert adv == pytest.approx(13.0 - rapl_at_80, abs=1e-9)

    def test_advantage_outside_range_raises(self):
        with pytest.raises(ValueError):
            self._result().dvfs_advantage_at(10.0)
