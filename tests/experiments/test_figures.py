"""Integration tests for the figure experiments (Figures 1-5).

Sizes are reduced relative to the benchmark defaults; the assertions
encode the *shape* criteria from DESIGN.md.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import figure1, figure2, figure3, figure4, figure5


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return figure1.run(duration=30.0, seed=0)

    def test_lammps_consistent(self, result):
        assert result.lammps_class.trace_class == "consistent"

    def test_amg_fluctuating(self, result):
        assert result.amg_class.trace_class == "fluctuating"
        assert result.amg_class.cv > 0.05

    def test_qmcpack_phased_with_descending_rates(self, result):
        assert result.qmcpack_class.trace_class == "phased"
        rates = result.qmcpack_class.segment_rates
        assert len(rates) == 3
        assert rates[0] > rates[1] > rates[2]

    def test_render(self, result):
        text = figure1.render(result)
        assert "LAMMPS" in text and "class=phased" in text


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return figure2.run(caps=(140.0, 110.0, 85.0), duration=8.0, seed=0)

    def test_application_aware_frequency_split(self, result):
        assert result.compute_bound_always_faster()

    def test_frequency_decreases_with_cap(self, result):
        for app in ("lammps", "stream"):
            freqs = result.frequency_ghz[app]
            assert list(freqs) == sorted(freqs, reverse=True)

    def test_render(self, result):
        assert "yes" in figure2.render(result)


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return figure3.run(duration=45.0, seed=0)

    @pytest.mark.parametrize("app", ["lammps", "qmcpack"])
    @pytest.mark.parametrize("scheme", ["linear-decrease", "step-function",
                                        "jagged-edge"])
    def test_progress_follows_cap(self, result, app, scheme):
        cell = result.cell(app, scheme)
        assert cell.cap_progress_correlation() > 0.7

    def test_openmc_follows_cap_coarsely(self, result):
        cell = result.cell("openmc", "step-function")
        assert cell.cap_progress_correlation(smooth=8.0) > 0.4

    def test_openmc_zero_glitches_present(self, result):
        assert any(c.has_zero_glitches() for c in result.cells
                   if c.app == "openmc")

    def test_cat1_apps_have_no_glitches(self, result):
        assert not any(c.has_zero_glitches() for c in result.cells
                       if c.app == "lammps")

    def test_render(self, result):
        text = figure3.render(result)
        assert "jagged-edge" in text


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4.run(
            apps=("lammps", "stream"),
            repeats=2, seed=0,
            baseline_window=10.0, uncapped_window=8.0,
            capped_window=10.0, warmup=2.5,
        )

    def test_deltas_grow_with_tighter_caps(self, result):
        for panel in result.panels:
            deltas = [m.delta_mean for m in panel.measurements]
            # tighter cap (later in sweep) => larger measured impact
            assert deltas[-1] > deltas[0]

    def test_lammps_midrange_within_tens_of_percent(self, result):
        panel = result.panel("lammps")
        mid = panel.errors.per_point[1:-1]
        assert all(abs(e) < 40.0 for e in mid)

    def test_stream_model_underestimates(self, result):
        """Paper Fig. 4d: the DVFS-only model underestimates RAPL's
        impact on the memory-bound code."""
        panel = result.panel("stream")
        assert panel.errors.max_underestimate < -25.0
        assert all(e <= 5.0 for e in panel.errors.per_point)

    def test_model_inputs_recorded(self, result):
        for panel in result.panels:
            assert panel.r_max > 0
            assert panel.p_coremax > 0
            assert panel.alpha == 2.0

    def test_render(self, result):
        text = figure4.render(result)
        assert "P_corecap" in text and "MAPE" in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5.run(
            freqs=(3.3e9, 2.5e9, 1.9e9, 1.4e9, 1.2e9),
            caps=(140.0, 100.0, 75.0, 55.0, 45.0),
            duration=8.0, warmup=3.0, seed=0,
        )

    def test_dvfs_beats_rapl_in_overlap(self, result):
        lo, hi = result.overlap_range()
        for power in (lo + 0.25 * (hi - lo), (lo + hi) / 2,
                      lo + 0.75 * (hi - lo)):
            assert result.dvfs_advantage_at(power) > -0.2

    def test_dvfs_advantage_grows_at_low_power(self, result):
        lo, hi = result.overlap_range()
        low_adv = result.dvfs_advantage_at(lo + 0.1 * (hi - lo))
        high_adv = result.dvfs_advantage_at(lo + 0.9 * (hi - lo))
        assert low_adv > high_adv

    def test_rapl_reaches_lower_power_than_dvfs(self, result):
        """DVFS bottoms out at the ladder floor; RAPL can cap below it."""
        assert (min(p.power for p in result.rapl)
                < min(p.power for p in result.dvfs))

    def test_progress_monotone_in_power(self, result):
        for curve in (result.dvfs, result.rapl):
            pts = sorted(curve, key=lambda p: p.power)
            rates = [p.progress for p in pts]
            assert rates == sorted(rates)

    def test_render(self, result):
        text = figure5.render(result)
        assert "DVFS" in text and "RAPL" in text
