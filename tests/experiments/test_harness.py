"""Integration tests for the Testbed harness."""

import pytest

pytestmark = pytest.mark.slow

from repro.exceptions import ConfigurationError
from repro.experiments import Testbed
from repro.nrm.schemes import FixedCapSchedule


@pytest.fixture(scope="module")
def tb():
    return Testbed(seed=7)


class TestRun:
    def test_run_to_completion(self, tb):
        r = tb.run("lammps", app_kwargs={"n_steps": 40, "n_workers": 8})
        assert r.app_name == "lammps"
        # 40 steps at 20 steps/s (nominal) ... turbo can shave up to
        # f_turbo/f_nominal off (8 busy cores leave package headroom)
        assert 2.0 * 3.3 / 3.7 * 0.98 <= r.duration <= 2.0 * 1.02
        assert not r.progress.is_empty()
        assert r.pkg_energy > 0.0

    def test_run_bounded_by_duration(self, tb):
        r = tb.run("lammps", duration=3.0,
                   app_kwargs={"n_steps": 10_000, "n_workers": 8})
        assert r.duration == pytest.approx(3.0)

    def test_prebuilt_app_accepted(self, tb):
        from repro.apps import build

        app = build("stream", n_iterations=30, n_workers=8)
        r = tb.run(app)
        assert r.app_name == "stream"

    def test_power_and_cap_series_collected(self, tb):
        r = tb.run("lammps", duration=4.0,
                   schedule=FixedCapSchedule(100.0),
                   app_kwargs={"n_steps": 10_000})
        assert len(r.power) >= 3
        assert r.cap.values.max() == pytest.approx(100.0)
        # cap binds: settled power below the cap plus tolerance
        assert r.power.values[-1] <= 105.0

    def test_dvfs_pin(self, tb):
        r = tb.run("lammps", duration=2.0, dvfs_freq=1.6e9,
                   app_kwargs={"n_steps": 10_000})
        assert r.frequency.values.max() <= 1.6e9

    def test_counters_and_mips(self, tb):
        r = tb.run("lammps", app_kwargs={"n_steps": 20, "n_workers": 4})
        assert r.mips() > 0.0
        assert r.mpo() > 0.0

    def test_imbalance_monitors_both_definitions(self, tb):
        r = tb.run("imbalance",
                   app_kwargs={"equal": True, "n_iterations": 3,
                               "n_workers": 4})
        assert "progress/imbalance/iterations" in r.topics
        assert "progress/imbalance/work_units" in r.topics

    def test_urban_monitors_components(self, tb):
        r = tb.run("urban", duration=6.0,
                   app_kwargs={"duration_steps": 2, "n_workers": 4})
        assert set(r.topics) == {"progress/urban/nek",
                                 "progress/urban/eplus"}

    def test_steady_progress_window(self, tb):
        r = tb.run("stream", duration=6.0,
                   app_kwargs={"n_iterations": 10_000, "n_workers": 8})
        rate = r.steady_progress(2.0, 6.01)
        assert rate > 0.0

    def test_steady_progress_empty_window_raises(self, tb):
        r = tb.run("lammps", app_kwargs={"n_steps": 20, "n_workers": 4})
        with pytest.raises(ConfigurationError):
            r.steady_progress(500.0, 600.0)


class TestCharacterize:
    def test_beta_and_mpo_for_stream(self, tb):
        c = tb.characterize("stream",
                            app_kwargs={"n_iterations": 60})
        assert c.beta == pytest.approx(0.37, abs=0.03)
        assert c.mpo == pytest.approx(50.9e-3, rel=0.1)
        assert c.t_low > c.t_high

    def test_beta_for_compute_bound(self, tb):
        c = tb.characterize("lammps", app_kwargs={"n_steps": 60})
        assert c.beta >= 0.97


class TestDeltaProtocol:
    def test_capping_reduces_progress(self, tb):
        m = tb.measure_delta_progress(
            "lammps", 90.0, beta=0.99, repeats=2,
            uncapped_window=6.0, capped_window=8.0, warmup=2.0,
            app_kwargs={"n_steps": 100_000},
        )
        assert m.delta_mean > 0.0
        assert m.r_uncapped > 0.0
        assert m.p_corecap == pytest.approx(0.99 * 90.0)

    def test_nonbinding_cap_changes_little(self, tb):
        m = tb.measure_delta_progress(
            "lammps", 200.0, beta=0.99, repeats=1,
            uncapped_window=6.0, capped_window=6.0, warmup=2.0,
            app_kwargs={"n_steps": 100_000},
        )
        assert abs(m.delta_mean) < 0.05 * m.r_uncapped

    def test_repeats_validation(self, tb):
        with pytest.raises(ConfigurationError):
            tb.measure_delta_progress("lammps", 90.0, beta=1.0, repeats=0)
