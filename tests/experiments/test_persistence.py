"""Tests for run-telemetry JSON persistence."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import Testbed
from repro.experiments.persistence import LoadedRun, load_run, save_run
from repro.nrm.schemes import FixedCapSchedule


@pytest.fixture(scope="module")
def result():
    tb = Testbed(seed=9)
    return tb.run("lammps", duration=4.0, schedule=FixedCapSchedule(110.0),
                  app_kwargs={"n_steps": 10_000, "n_workers": 8})


class TestRoundtrip:
    def test_save_and_load(self, result, tmp_path):
        path = save_run(result, tmp_path / "run.json")
        loaded = load_run(path)
        assert loaded.app_name == "lammps"
        assert loaded.seed == result.seed
        assert loaded.duration == pytest.approx(result.duration)
        assert loaded.pkg_energy == pytest.approx(result.pkg_energy)

    def test_series_roundtrip_exact(self, result, tmp_path):
        loaded = load_run(save_run(result, tmp_path / "run.json"))
        assert list(loaded.progress) == list(result.progress)
        assert list(loaded.power) == list(result.power)
        assert list(loaded.cap) == list(result.cap)

    def test_topics_roundtrip(self, result, tmp_path):
        loaded = load_run(save_run(result, tmp_path / "run.json"))
        assert set(loaded.topics) == set(result.topics)

    def test_counter_summaries_preserved(self, result, tmp_path):
        loaded = load_run(save_run(result, tmp_path / "run.json"))
        assert loaded.mips == pytest.approx(result.mips())
        assert loaded.mpo == pytest.approx(result.mpo())

    def test_app_metadata(self, result, tmp_path):
        loaded = load_run(save_run(result, tmp_path / "run.json"))
        assert loaded.app_meta["n_workers"] == 8
        assert loaded.app_meta["metric"] == "Atom timesteps per second"

    def test_creates_parent_dirs(self, result, tmp_path):
        path = save_run(result, tmp_path / "deep" / "run.json")
        assert load_run(path).app_name == "lammps"

    def test_file_is_plain_json(self, result, tmp_path):
        path = save_run(result, tmp_path / "run.json")
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["format_version"] == 1
        assert isinstance(payload["series"]["power"]["times"], list)

    def test_unknown_version_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadedRun({"format_version": 99})
