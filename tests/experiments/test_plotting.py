"""Unit tests for the ASCII plotter."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.plotting import Series, ascii_plot


class TestSeries:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            Series("s", (1.0, 2.0), (1.0,))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Series("s", (), ())

    def test_rejects_long_marker(self):
        with pytest.raises(ConfigurationError):
            Series("s", (1.0,), (1.0,), marker="xy")


class TestAsciiPlot:
    def _plot(self, **kwargs):
        return ascii_plot(
            [Series("up", (0.0, 1.0, 2.0), (0.0, 1.0, 2.0), marker="o")],
            **kwargs,
        )

    def test_contains_markers_and_legend(self):
        out = self._plot()
        assert "o" in out
        assert "o = up" in out

    def test_axis_range_labels(self):
        out = self._plot()
        assert "0" in out and "2" in out

    def test_title_and_labels(self):
        out = self._plot(title="T", xlabel="X", ylabel="Y")
        assert out.splitlines()[0] == "T"
        assert "X" in out and "Y" in out

    def test_corners_are_placed(self):
        out = ascii_plot(
            [Series("s", (0.0, 10.0), (0.0, 5.0), marker="#")],
            width=20, height=6,
        )
        lines = out.splitlines()
        plot_rows = [l for l in lines if "|" in l]
        # lowest-left and highest-right markers present
        assert plot_rows[0].rstrip().endswith("#")
        assert plot_rows[-1].split("|")[1][0] == "#"

    def test_multiple_series_overlay(self):
        out = ascii_plot([
            Series("a", (0.0, 1.0), (0.0, 0.0), marker="a"),
            Series("b", (0.0, 1.0), (1.0, 1.0), marker="b"),
        ])
        assert "a" in out and "b" in out

    def test_constant_series_does_not_crash(self):
        out = ascii_plot([Series("c", (1.0, 2.0), (5.0, 5.0))])
        assert "o" in out

    def test_rejects_nothing(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([])

    def test_rejects_tiny_grid(self):
        with pytest.raises(ConfigurationError):
            self._plot(width=2, height=2)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([Series("s", (0.0,), (float("nan"),))])
