"""Unit tests for report rendering helpers."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.report import ascii_table, fmt, series_block, sparkline
from repro.telemetry.timeseries import TimeSeries


class TestFmt:
    def test_bool_renders_yn(self):
        assert fmt(True) == "Y"
        assert fmt(False) == "N"

    def test_small_float(self):
        assert fmt(0.52) == "0.52"

    def test_large_float_compact(self):
        assert fmt(4.8e6) == "4.8e+06"

    def test_zero(self):
        assert fmt(0.0) == "0"

    def test_string_passthrough(self):
        assert fmt("compute") == "compute"

    def test_int(self):
        assert fmt(24) == "24"


class TestAsciiTable:
    def test_renders_header_rule_rows(self):
        text = ascii_table(["a", "b"], [[1, 2], [3, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_column_alignment(self):
        text = ascii_table(["col"], [["x"], ["longer"]])
        lines = text.splitlines()
        assert len(lines[1]) >= len("longer")

    def test_empty_rows_ok(self):
        text = ascii_table(["a"], [])
        assert "a" in text

    def test_rejects_empty_headers(self):
        with pytest.raises(ConfigurationError):
            ascii_table([], [])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            ascii_table(["a", "b"], [[1]])


class TestSparkline:
    def test_empty_series(self):
        assert sparkline(TimeSeries("x")) == "(empty)"

    def test_constant_series_flat(self):
        ts = TimeSeries("x", [(i, 5.0) for i in range(10)])
        line = sparkline(ts)
        assert len(set(line)) == 1

    def test_ramp_is_monotone(self):
        ts = TimeSeries("x", [(i, float(i)) for i in range(8)])
        line = sparkline(ts)
        assert list(line) == sorted(line)

    def test_width_cap(self):
        ts = TimeSeries("x", [(i, float(i)) for i in range(500)])
        assert len(sparkline(ts, width=40)) == 40


class TestSeriesBlock:
    def test_contains_stats(self):
        ts = TimeSeries("x", [(0.0, 1.0), (1.0, 3.0)])
        block = series_block("name", ts, "W")
        assert "min=1" in block and "max=3" in block and "W" in block

    def test_empty(self):
        assert "no samples" in series_block("n", TimeSeries("x"))
