"""Integration tests for the table experiments (Tables I-VI)."""

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import (
    Testbed,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run(n_procs=24, n_iterations=5, seed=0)

    def test_definition1_identical_for_both_variants(self, result):
        d1 = [r.def1_iterations_per_s for r in result.rows]
        assert d1[0] == pytest.approx(d1[1], rel=0.02)
        assert d1[0] == pytest.approx(1.0, rel=0.05)

    def test_definition2_halves_with_imbalance(self, result):
        by = {r.routine: r for r in result.rows}
        ratio = (by["do_equal_work"].def2_work_units_per_s
                 / by["do_unequal_work"].def2_work_units_per_s)
        # equal does 24e6 units/s, unequal 12.5e6: ratio 1.92
        assert ratio == pytest.approx(1.92, rel=0.02)

    def test_mips_explodes_with_imbalance(self, result):
        """The paper's Table I point: ~20x MIPS inflation at identical
        online performance."""
        assert 15.0 < result.mips_inflation < 30.0

    def test_equal_mips_in_paper_regime(self, result):
        by = {r.routine: r for r in result.rows}
        assert by["do_equal_work"].mips == pytest.approx(4115.5, rel=0.15)

    def test_render(self, result):
        text = table1.render(result)
        assert "do_unequal_work" in text
        assert "MIPS" in text


class TestTable2:
    def test_all_apps_described(self):
        result = table2.run()
        assert len(result.descriptions) == 9
        assert any("Monte Carlo" in d for _, d in result.descriptions)

    def test_render(self):
        assert "LAMMPS" in table2.render(table2.run())


class TestTable3:
    def test_questions(self):
        result = table3.run()
        assert len(result.questions) == 8
        assert "FOM" in table3.render(result)


class TestTable4:
    def test_consistency_check_passes(self):
        result = table4.run(check_consistency=True)
        assert len(result.responses) == 9

    def test_render_has_yn_matrix(self):
        text = table4.render(table4.run())
        assert "QMCPACK" in text
        assert "memory bandwidth" in text


class TestTable5:
    def test_derived_categorization_matches_paper(self):
        result = table5.run()
        assert result.matches_paper()

    def test_render(self):
        assert "matches" in table5.render(table5.run())


class TestTable6:
    @pytest.fixture(scope="class")
    def result(self):
        return table6.run(seed=0, scale=0.5)

    def test_all_five_apps_characterized(self, result):
        assert {c.app_name for c in result.characterizations} == set(
            table6.PAPER
        )

    def test_beta_values_near_paper(self, result):
        for c in result.characterizations:
            paper_beta = table6.PAPER[c.app_name][0]
            assert c.beta == pytest.approx(paper_beta, abs=0.05), c.app_name

    def test_mpo_values_near_paper(self, result):
        for c in result.characterizations:
            paper_mpo = table6.PAPER[c.app_name][1]
            assert c.mpo == pytest.approx(paper_mpo, rel=0.20), c.app_name

    def test_beta_ordering_preserved(self, result):
        assert result.beta_ordering_matches_paper()

    def test_render(self, result):
        text = table6.render(result)
        assert "beta" in text and "MPO" in text
