"""Unit tests for NodeConfig validation and derived quantities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.hardware.config import NodeConfig, skylake_config


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = skylake_config()
        assert cfg.n_cores == 24
        assert cfg.f_nominal == pytest.approx(3.3e9)

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(n_cores=0)

    def test_rejects_single_step_ladder(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(freq_ladder=(2.0e9,), f_nominal=2.0e9)

    def test_rejects_descending_ladder(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(freq_ladder=(3.0e9, 2.0e9), f_nominal=3.0e9)

    def test_rejects_f_nominal_off_ladder(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(freq_ladder=(1.0e9, 2.0e9), f_nominal=1.5e9)

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(mem_bandwidth=-1.0)

    def test_rejects_activity_above_one(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(stall_activity=1.5)

    def test_rejects_duty_levels_not_ending_at_one(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(duty_levels=(0.25, 0.5))

    def test_rejects_f_beta_low_outside_ladder(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(f_beta_low=0.1e9)

    def test_overrides_are_applied(self):
        cfg = skylake_config(n_cores=12)
        assert cfg.n_cores == 12


class TestDerived:
    def test_f_min_max(self):
        cfg = skylake_config()
        assert cfg.f_min == pytest.approx(1.2e9)
        assert cfg.f_turbo == pytest.approx(3.7e9)
        assert cfg.f_turbo > cfg.f_nominal

    def test_nominal_index_points_at_nominal(self):
        cfg = skylake_config()
        assert cfg.freq_ladder[cfg.nominal_index] == cfg.f_nominal

    def test_ladder_has_100mhz_steps(self):
        cfg = skylake_config()
        steps = [b - a for a, b in zip(cfg.freq_ladder, cfg.freq_ladder[1:])]
        assert all(s == pytest.approx(0.1e9, rel=1e-6) for s in steps)

    def test_ladder_index_snaps_down(self):
        cfg = skylake_config()
        idx = cfg.ladder_index(2.55e9)
        assert cfg.freq_ladder[idx] == pytest.approx(2.5e9)

    def test_ladder_index_exact_step(self):
        cfg = skylake_config()
        idx = cfg.ladder_index(2.0e9)
        assert cfg.freq_ladder[idx] == pytest.approx(2.0e9)

    def test_ladder_index_below_min_raises(self):
        cfg = skylake_config()
        with pytest.raises(ConfigurationError):
            cfg.ladder_index(0.5e9)

    def test_ladder_index_above_max_clips_to_top(self):
        cfg = skylake_config()
        assert cfg.freq_ladder[cfg.ladder_index(9e9)] == cfg.f_turbo


class TestVoltageCurve:
    def test_floor_below_knee(self):
        cfg = skylake_config()
        assert cfg.voltage(1.2e9) == pytest.approx(cfg.v_min)
        assert cfg.voltage(cfg.v_knee_freq) == pytest.approx(cfg.v_min)

    def test_nominal_voltage_at_nominal_freq(self):
        cfg = skylake_config()
        assert cfg.voltage(cfg.f_nominal) == pytest.approx(cfg.v_nominal)

    def test_turbo_voltage_extrapolates_above_nominal(self):
        cfg = skylake_config()
        assert cfg.voltage(cfg.f_turbo) > cfg.v_nominal

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ConfigurationError):
            skylake_config().voltage(0.0)

    @given(st.floats(min_value=1.2e9, max_value=3.7e9))
    def test_voltage_monotonic_nondecreasing(self, freq):
        cfg = skylake_config()
        assert cfg.voltage(freq) >= cfg.voltage(freq - 1e6) - 1e-12
