"""Unit tests for the PAPI-like counter bank."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.hardware.counters import EVENTS, CounterBank, CounterSnapshot


class TestCounterBank:
    def test_starts_at_zero(self):
        bank = CounterBank(4)
        snap = bank.snapshot(0.0)
        for ev in EVENTS:
            assert snap.total(ev) == 0.0

    def test_accrue_and_total(self):
        bank = CounterBank(2)
        bank.accrue(0, instructions=100, cycles=200, l3_misses=3)
        bank.accrue(1, instructions=50)
        snap = bank.snapshot(1.0)
        assert snap.total("PAPI_TOT_INS") == 150
        assert snap.total("PAPI_TOT_CYC") == 200
        assert snap.total("PAPI_L3_TCM") == 3

    def test_rejects_negative_increment(self):
        bank = CounterBank(1)
        with pytest.raises(ConfigurationError):
            bank.accrue(0, instructions=-1)

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            CounterBank(0)

    def test_snapshot_is_immutable_copy(self):
        bank = CounterBank(1)
        snap = bank.snapshot(0.0)
        bank.accrue(0, instructions=10)
        assert snap.total("PAPI_TOT_INS") == 0.0

    def test_reset(self):
        bank = CounterBank(1)
        bank.accrue(0, instructions=10, cycles=20, l3_misses=1)
        bank.reset()
        snap = bank.snapshot(0.0)
        assert snap.total("PAPI_TOT_INS") == 0.0
        assert snap.total("PAPI_L3_TCM") == 0.0

    def test_unknown_event_raises(self):
        snap = CounterBank(1).snapshot(0.0)
        with pytest.raises(ConfigurationError):
            snap.total("PAPI_FP_OPS")


class TestSnapshotMath:
    def _snaps(self):
        bank = CounterBank(2)
        s0 = bank.snapshot(10.0)
        bank.accrue(0, instructions=2e6, cycles=4e6, l3_misses=1e3)
        bank.accrue(1, instructions=4e6, cycles=4e6, l3_misses=3e3)
        s1 = bank.snapshot(12.0)
        return s0, s1

    def test_delta(self):
        s0, s1 = self._snaps()
        d = s1.delta(s0)
        assert d.time == pytest.approx(2.0)
        assert d.total("PAPI_TOT_INS") == pytest.approx(6e6)
        assert np.allclose(d.tot_ins, [2e6, 4e6])

    def test_mips(self):
        s0, s1 = self._snaps()
        # 6e6 instructions over 2 s = 3 MIPS
        assert s1.delta(s0).mips() == pytest.approx(3.0)

    def test_mips_requires_positive_interval(self):
        bank = CounterBank(1)
        with pytest.raises(ConfigurationError):
            bank.snapshot(0.0).mips()

    def test_mpo(self):
        s0, s1 = self._snaps()
        d = s1.delta(s0)
        assert d.mpo() == pytest.approx(4e3 / 6e6)

    def test_mpo_zero_instructions(self):
        bank = CounterBank(1)
        assert bank.snapshot(0.0).mpo() == 0.0
