"""Unit tests for per-core state."""

import pytest

from repro.hardware.config import skylake_config
from repro.hardware.cpu import CoreMode, CoreState


@pytest.fixture()
def cfg():
    return skylake_config()


class TestEffectiveClock:
    def test_full_duty(self):
        core = CoreState(core_id=0, freq=3.3e9)
        assert core.effective_clock() == pytest.approx(3.3e9)

    def test_duty_scales_clock(self):
        core = CoreState(core_id=0, freq=2.0e9, duty=0.25)
        assert core.effective_clock() == pytest.approx(0.5e9)


class TestActivity:
    def test_busy_fully_computing(self, cfg):
        core = CoreState(core_id=0, freq=3.3e9, mode=CoreMode.BUSY,
                         compute_frac=1.0)
        assert core.activity(cfg) == pytest.approx(1.0)

    def test_busy_fully_stalled(self, cfg):
        core = CoreState(core_id=0, freq=3.3e9, mode=CoreMode.BUSY,
                         compute_frac=0.0)
        assert core.activity(cfg) == pytest.approx(cfg.stall_activity)

    def test_busy_blend_is_linear(self, cfg):
        core = CoreState(core_id=0, freq=3.3e9, mode=CoreMode.BUSY,
                         compute_frac=0.5)
        expected = 0.5 + 0.5 * cfg.stall_activity
        assert core.activity(cfg) == pytest.approx(expected)

    def test_spin(self, cfg):
        core = CoreState(core_id=0, freq=3.3e9, mode=CoreMode.SPIN)
        assert core.activity(cfg) == pytest.approx(cfg.spin_activity)

    @pytest.mark.parametrize("mode", [CoreMode.IDLE, CoreMode.SLEEP])
    def test_idle_and_sleep(self, cfg, mode):
        core = CoreState(core_id=0, freq=3.3e9, mode=mode)
        assert core.activity(cfg) == pytest.approx(cfg.sleep_activity)

    def test_activity_ordering(self, cfg):
        """busy >= spin >= sleep — power ordering of the modes."""
        busy = CoreState(core_id=0, freq=3.3e9, mode=CoreMode.BUSY,
                         compute_frac=1.0)
        spin = CoreState(core_id=0, freq=3.3e9, mode=CoreMode.SPIN)
        sleep = CoreState(core_id=0, freq=3.3e9, mode=CoreMode.SLEEP)
        assert busy.activity(cfg) >= spin.activity(cfg) >= sleep.activity(cfg)
