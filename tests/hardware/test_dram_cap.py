"""Tests for DRAM-domain power capping."""

import pytest

from repro.exceptions import ConfigurationError
from repro.hardware import SimulatedNode
from repro.hardware.msr import (
    MSR_DRAM_POWER_LIMIT,
    MSRDevice,
    PowerLimit,
    decode_power_limit,
    encode_power_limit,
)
from repro.hardware.rapl import RaplFirmware
from repro.runtime.engine import Engine, Work
from repro.sysfs import PowercapFS

MEMBOUND = dict(cycles=0.05e9, bytes=0.6e9)


def run_dram_capped(limit, duration=5.0):
    node = SimulatedNode()
    engine = Engine(node)
    fw = RaplFirmware(node, engine)
    if limit is not None:
        fw.set_dram_limit(limit)

    def body():
        while True:
            yield Work(**MEMBOUND)

    for c in range(24):
        engine.spawn(body(), core_id=c)
    engine.run(until=duration)
    e0 = node.dram_energy
    engine.run(until=duration + 3.0)
    dram_avg = (node.dram_energy - e0) / 3.0
    return node, fw, dram_avg


class TestEnforcement:
    def test_dram_power_respects_limit(self):
        _, _, dram_avg = run_dram_capped(25.0)
        assert dram_avg <= 25.0 * 1.02

    def test_uncapped_dram_power_higher(self):
        _, _, free = run_dram_capped(None)
        _, _, capped = run_dram_capped(25.0)
        assert free > capped

    def test_throttle_is_exactly_the_power_algebra(self):
        node, fw, _ = run_dram_capped(25.0)
        cfg = node.cfg
        expected_bw = (25.0 - cfg.dram_base) / cfg.dram_per_bw
        assert node.dram_bw_cap == pytest.approx(expected_bw)
        assert node.effective_mem_bandwidth <= expected_bw

    def test_clear_limit_restores_bandwidth(self):
        node, fw, _ = run_dram_capped(25.0)
        fw.set_dram_limit(None)
        assert node.dram_bw_cap is None
        assert node.effective_mem_bandwidth == pytest.approx(
            node.cfg.mem_bandwidth * node.uncore_scale
        )

    def test_limit_below_base_rejected(self):
        node = SimulatedNode()
        fw = RaplFirmware(node, Engine(node))
        with pytest.raises(ConfigurationError):
            fw.set_dram_limit(node.cfg.dram_base)

    def test_dram_cap_slows_memory_bound_work(self):
        node_f = SimulatedNode()
        e_f = Engine(node_f)
        RaplFirmware(node_f, e_f)
        node_c = SimulatedNode()
        e_c = Engine(node_c)
        fw_c = RaplFirmware(node_c, e_c)
        # 4 cores demand 48 GB/s; a 10 W DRAM limit admits only ~35 GB/s
        fw_c.set_dram_limit(10.0)

        def body():
            yield Work(cycles=0.0, bytes=100e9)

        for c in range(4):
            e_f.spawn(body(), core_id=c)
            e_c.spawn(body(), core_id=c)
        t_free = e_f.run()
        t_capped = e_c.run()
        assert t_capped > t_free


class TestMsrAndSysfs:
    @pytest.fixture()
    def stack(self):
        node = SimulatedNode()
        fw = RaplFirmware(node, Engine(node))
        return node, fw, MSRDevice(node, fw), PowercapFS(node, fw)

    def test_msr_write_programs_limit(self, stack):
        node, fw, dev, _ = stack
        pl = PowerLimit(22.0, True, False, 0.001)
        dev.write(MSR_DRAM_POWER_LIMIT, encode_power_limit(pl))
        assert fw.dram_limit == pytest.approx(22.0)

    def test_msr_write_disabled_clears(self, stack):
        node, fw, dev, _ = stack
        fw.set_dram_limit(22.0)
        pl = PowerLimit(22.0, False, False, 0.001)
        dev.write(MSR_DRAM_POWER_LIMIT, encode_power_limit(pl))
        assert fw.dram_limit is None

    def test_msr_read_roundtrip(self, stack):
        node, fw, dev, _ = stack
        fw.set_dram_limit(22.0)
        pl1, _, _ = decode_power_limit(dev.read(MSR_DRAM_POWER_LIMIT))
        assert pl1.watts == pytest.approx(22.0)
        assert pl1.enabled

    def test_msr_read_unset_is_zero(self, stack):
        _, _, dev, _ = stack
        assert dev.read(MSR_DRAM_POWER_LIMIT) == 0

    def test_sysfs_write_and_read(self, stack):
        node, fw, _, pc = stack
        pc.write(PowercapFS.DRAM + "/constraint_0_power_limit_uw",
                 "24000000")
        assert fw.dram_limit == pytest.approx(24.0)
        assert pc.read(PowercapFS.DRAM + "/constraint_0_power_limit_uw"
                       ) == "24000000\n"

    def test_sysfs_zero_clears(self, stack):
        node, fw, _, pc = stack
        fw.set_dram_limit(24.0)
        pc.write(PowercapFS.DRAM + "/constraint_0_power_limit_uw", "0")
        assert fw.dram_limit is None
