"""Unit tests for the DVFS and DDCM software knobs."""

import pytest

from repro.exceptions import ConfigurationError
from repro.hardware import SimulatedNode
from repro.hardware.ddcm import DDCMController
from repro.hardware.dvfs import DVFSController
from repro.hardware.rapl import RaplFirmware
from repro.runtime.engine import Engine, Work


@pytest.fixture()
def node():
    return SimulatedNode()


class TestDVFS:
    def test_set_frequency_pins_clock(self, node):
        dvfs = DVFSController(node)
        applied = dvfs.set_frequency(1.6e9)
        assert applied == pytest.approx(1.6e9)
        assert node.frequency == pytest.approx(1.6e9)
        assert dvfs.frequency == pytest.approx(1.6e9)

    def test_set_frequency_snaps_to_ladder(self, node):
        applied = DVFSController(node).set_frequency(2.33e9)
        assert applied == pytest.approx(2.3e9)

    def test_rapl_cannot_exceed_dvfs_pin(self, node):
        """The pin acts as a ceiling even with RAPL headroom."""
        engine = Engine(node)
        RaplFirmware(node, engine)
        DVFSController(node).set_frequency(2.0e9)

        def body():
            while True:
                yield Work(cycles=0.2e9)

        engine.spawn(body(), core_id=0)
        engine.run(until=2.0)
        assert node.frequency <= 2.0e9

    def test_release_restores_turbo_ceiling(self, node):
        dvfs = DVFSController(node)
        dvfs.set_frequency(1.6e9)
        dvfs.release()
        assert node.freq_limit == node.cfg.f_turbo


class TestDDCM:
    def test_set_level_by_index(self, node):
        ddcm = DDCMController(node)
        assert ddcm.set_level(0) == pytest.approx(0.125)
        assert ddcm.set_level(7) == pytest.approx(1.0)

    def test_set_level_out_of_range(self, node):
        with pytest.raises(ConfigurationError):
            DDCMController(node).set_level(8)

    def test_set_duty_snaps(self, node):
        assert DDCMController(node).set_duty(0.7) == pytest.approx(0.625)

    def test_release(self, node):
        ddcm = DDCMController(node)
        ddcm.set_level(2)
        assert ddcm.release() == 1.0
        assert ddcm.duty == 1.0

    def test_ddcm_slows_compute_proportionally(self, node):
        ddcm = DDCMController(node)
        ddcm.set_duty(0.5)
        engine = Engine(node)

        def body():
            yield Work(cycles=3.3e9)

        engine.spawn(body(), core_id=0)
        t = engine.run()
        assert t == pytest.approx(2.0)
