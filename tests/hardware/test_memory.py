"""Unit and property tests for max-min fair bandwidth allocation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.hardware.memory import allocate_bandwidth


class TestAllocateBandwidth:
    def test_under_capacity_everyone_gets_demand(self):
        grants = allocate_bandwidth([10.0, 20.0, 5.0], capacity=100.0)
        assert np.allclose(grants, [10.0, 20.0, 5.0])

    def test_over_capacity_equal_demands_split_evenly(self):
        grants = allocate_bandwidth([50.0, 50.0, 50.0], capacity=90.0)
        assert np.allclose(grants, [30.0, 30.0, 30.0])

    def test_small_demand_fully_granted_before_big_ones(self):
        grants = allocate_bandwidth([10.0, 100.0, 100.0], capacity=110.0)
        assert grants[0] == pytest.approx(10.0)
        assert grants[1] == pytest.approx(50.0)
        assert grants[2] == pytest.approx(50.0)

    def test_order_preserved(self):
        grants = allocate_bandwidth([100.0, 10.0], capacity=60.0)
        assert grants[0] == pytest.approx(50.0)
        assert grants[1] == pytest.approx(10.0)

    def test_zero_demand_gets_zero(self):
        grants = allocate_bandwidth([0.0, 80.0], capacity=50.0)
        assert grants[0] == 0.0
        assert grants[1] == pytest.approx(50.0)

    def test_empty_demands(self):
        assert allocate_bandwidth([], capacity=10.0).size == 0

    def test_rejects_negative_demand(self):
        with pytest.raises(ConfigurationError):
            allocate_bandwidth([-1.0], capacity=10.0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            allocate_bandwidth([1.0], capacity=0.0)

    def test_rejects_2d_input(self):
        with pytest.raises(ConfigurationError):
            allocate_bandwidth([[1.0, 2.0]], capacity=10.0)

    def test_rejects_nan_demand(self):
        with pytest.raises(ConfigurationError):
            allocate_bandwidth([float("nan")], capacity=10.0)


@given(
    demands=st.lists(st.floats(min_value=0.0, max_value=1e12), min_size=1,
                     max_size=32),
    capacity=st.floats(min_value=1.0, max_value=1e12),
)
def test_allocation_invariants(demands, capacity):
    grants = allocate_bandwidth(demands, capacity)
    d = np.asarray(demands)
    # Never grant more than demanded, never go negative.
    assert np.all(grants <= d + 1e-9)
    assert np.all(grants >= 0.0)
    # Never exceed capacity.
    assert grants.sum() <= capacity * (1 + 1e-9)
    # Work-conserving: if demand exceeds capacity, capacity is fully used;
    # otherwise everyone is satisfied.
    if d.sum() > capacity:
        assert grants.sum() == pytest.approx(capacity, rel=1e-9)
    else:
        assert np.allclose(grants, d)


@given(
    demands=st.lists(st.floats(min_value=0.1, max_value=1e9), min_size=2,
                     max_size=16),
    capacity=st.floats(min_value=1.0, max_value=1e9),
)
def test_allocation_is_max_min_fair(demands, capacity):
    """No grant can be raised without lowering a smaller-or-equal grant."""
    grants = allocate_bandwidth(demands, capacity)
    d = np.asarray(demands)
    unsatisfied = grants < d - 1e-6
    if unsatisfied.any():
        # All unsatisfied tasks receive the same share (the fair level),
        # and every satisfied task's demand lies below that level.
        level = grants[unsatisfied].min()
        assert np.allclose(grants[unsatisfied], level, rtol=1e-6)
        assert np.all(d[~unsatisfied] <= level * (1 + 1e-6))
