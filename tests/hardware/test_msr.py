"""Unit and property tests for MSR bit-field encode/decode and the device."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import MSRAccessError, MSRError
from repro.hardware import SimulatedNode
from repro.hardware.msr import (
    IA32_CLOCK_MODULATION,
    IA32_PERF_CTL,
    IA32_PERF_STATUS,
    MSR_DRAM_ENERGY_STATUS,
    MSR_PKG_ENERGY_STATUS,
    MSR_PKG_POWER_INFO,
    MSR_PKG_POWER_LIMIT,
    MSR_RAPL_POWER_UNIT,
    MSRDevice,
    PowerLimit,
    RaplUnits,
    decode_power_limit,
    decode_time_window,
    decode_units,
    encode_power_limit,
    encode_time_window,
    encode_units,
)


class TestUnits:
    def test_default_units_roundtrip(self):
        units = RaplUnits()
        assert decode_units(encode_units(units)) == units

    def test_default_register_value_matches_sdm(self):
        # power=1/8 W -> 3, energy=2^-14 J -> 14 (0xE), time=2^-10 s -> 10 (0xA)
        assert encode_units(RaplUnits()) == 0x3 | (14 << 8) | (10 << 16)

    def test_reject_unrepresentable_units(self):
        with pytest.raises(MSRError):
            encode_units(RaplUnits(power=2.0**-20))

    @given(
        pu=st.integers(min_value=0, max_value=15),
        eu=st.integers(min_value=0, max_value=31),
        tu=st.integers(min_value=0, max_value=15),
    )
    def test_units_roundtrip_all_exponents(self, pu, eu, tu):
        units = RaplUnits(power=2.0**-pu, energy=2.0**-eu, time=2.0**-tu)
        assert decode_units(encode_units(units)) == units


class TestTimeWindow:
    def test_one_second_window(self):
        tu = 2.0**-10
        bits = encode_time_window(1.0, tu)
        assert decode_time_window(bits, tu) == pytest.approx(1.0, rel=0.15)

    def test_rejects_nonpositive(self):
        with pytest.raises(MSRError):
            encode_time_window(0.0, 2.0**-10)

    @given(st.floats(min_value=1e-3, max_value=100.0))
    def test_roundtrip_within_format_resolution(self, seconds):
        """The 2^Y*(1+Z/4) format has <= ~12% relative spacing."""
        tu = 2.0**-10
        bits = encode_time_window(seconds, tu)
        assert decode_time_window(bits, tu) == pytest.approx(seconds, rel=0.15)

    def test_field_fits_seven_bits(self):
        bits = encode_time_window(40.0, 2.0**-10)
        assert 0 <= bits < (1 << 7)


class TestPowerLimitCoding:
    def test_roundtrip_pl1(self):
        pl1 = PowerLimit(watts=120.0, enabled=True, clamped=True, window=0.01)
        value = encode_power_limit(pl1)
        out, _, locked = decode_power_limit(value)
        assert out.watts == pytest.approx(120.0)
        assert out.enabled and out.clamped
        assert out.window == pytest.approx(0.01, rel=0.15)
        assert not locked

    def test_pl2_occupies_high_word(self):
        pl1 = PowerLimit(100.0, True, True, 1.0)
        pl2 = PowerLimit(150.0, True, False, 0.01)
        value = encode_power_limit(pl1, pl2)
        out1, out2, _ = decode_power_limit(value)
        assert out1.watts == pytest.approx(100.0)
        assert out2.watts == pytest.approx(150.0)
        assert not out2.clamped

    def test_lock_bit(self):
        pl1 = PowerLimit(100.0, True, True, 1.0)
        value = encode_power_limit(pl1, locked=True)
        assert value >> 63 == 1
        _, _, locked = decode_power_limit(value)
        assert locked

    def test_limit_quantized_to_power_unit(self):
        pl1 = PowerLimit(100.06, True, True, 1.0)
        out, _, _ = decode_power_limit(encode_power_limit(pl1))
        assert out.watts == pytest.approx(100.0)  # 0.125 W steps

    def test_rejects_limit_too_large_for_field(self):
        with pytest.raises(MSRError):
            encode_power_limit(PowerLimit(5000.0, True, True, 1.0))

    @given(st.floats(min_value=0.125, max_value=4000.0))
    def test_watts_roundtrip(self, watts):
        pl = PowerLimit(watts, True, True, 0.01)
        out, _, _ = decode_power_limit(encode_power_limit(pl))
        assert out.watts == pytest.approx(watts, abs=0.0626)


class TestMSRDevice:
    @pytest.fixture()
    def node(self):
        return SimulatedNode()

    @pytest.fixture()
    def dev(self, node):
        return MSRDevice(node)

    def test_unit_register(self, dev, node):
        units = decode_units(dev.read(MSR_RAPL_POWER_UNIT))
        assert units.power == node.cfg.power_unit
        assert units.energy == node.cfg.energy_unit

    def test_energy_counter_tracks_node_energy(self, dev, node):
        before = dev.read(MSR_PKG_ENERGY_STATUS)
        node.accrue(1.0)
        after = dev.read(MSR_PKG_ENERGY_STATUS)
        joules = (after - before) * node.cfg.energy_unit
        assert joules == pytest.approx(node.pkg_energy, abs=node.cfg.energy_unit)

    def test_energy_counter_is_32bit(self, dev, node):
        node.pkg_energy = (2**32 + 100) * node.cfg.energy_unit
        assert dev.read(MSR_PKG_ENERGY_STATUS) == 100

    def test_dram_energy_counter(self, dev, node):
        node.dram_energy = 1000 * node.cfg.energy_unit
        assert dev.read(MSR_DRAM_ENERGY_STATUS) == 1000

    def test_power_info_reports_tdp(self, dev, node):
        raw = dev.read(MSR_PKG_POWER_INFO) & 0x7FFF
        assert raw * node.cfg.power_unit == pytest.approx(node.cfg.tdp)

    def test_perf_status_reflects_frequency(self, dev, node):
        node.set_frequency(2.5e9)
        ratio = (dev.read(IA32_PERF_STATUS) >> 8) & 0xFF
        assert ratio == 25

    def test_perf_ctl_write_sets_frequency_ceiling(self, dev, node):
        dev.write(IA32_PERF_CTL, 16 << 8)  # 1.6 GHz
        assert node.freq_limit == pytest.approx(1.6e9)
        assert node.frequency <= 1.6e9

    def test_clock_modulation_write_sets_duty(self, dev, node):
        dev.write(IA32_CLOCK_MODULATION, (1 << 4) | (4 << 1))  # 4/8 duty
        assert node.duty == pytest.approx(0.5)

    def test_clock_modulation_disable_restores_full_duty(self, dev, node):
        dev.write(IA32_CLOCK_MODULATION, (1 << 4) | (2 << 1))
        dev.write(IA32_CLOCK_MODULATION, 0)
        assert node.duty == 1.0

    def test_clock_modulation_read_roundtrip(self, dev, node):
        node.set_duty(0.375)
        value = dev.read(IA32_CLOCK_MODULATION)
        assert value & (1 << 4)
        assert (value >> 1) & 0x7 == 3

    def test_unimplemented_msr_read_raises(self, dev):
        with pytest.raises(MSRAccessError):
            dev.read(0xC0010015)

    def test_unimplemented_msr_write_raises(self, dev):
        with pytest.raises(MSRAccessError):
            dev.write(0xC0010015, 0)

    def test_read_only_register_write_raises(self, dev):
        with pytest.raises(MSRError):
            dev.write(MSR_PKG_ENERGY_STATUS, 0)

    def test_power_limit_write_without_firmware_raises(self, dev):
        pl = PowerLimit(100.0, True, True, 0.01)
        with pytest.raises(MSRError):
            dev.write(MSR_PKG_POWER_LIMIT, encode_power_limit(pl))

    def test_non_u64_write_rejected(self, dev):
        with pytest.raises(MSRError):
            dev.write(IA32_PERF_CTL, -1)
