"""Unit tests for the msr-safe whitelist layer."""

import pytest

from repro.exceptions import MSRPermissionError
from repro.hardware import SimulatedNode
from repro.hardware.msr import (
    IA32_CLOCK_MODULATION,
    IA32_PERF_CTL,
    MSR_PKG_ENERGY_STATUS,
    MSR_RAPL_POWER_UNIT,
    MSRDevice,
)
from repro.hardware.msr_safe import DEFAULT_WHITELIST, MSRSafe


@pytest.fixture()
def node():
    return SimulatedNode()


@pytest.fixture()
def safe(node):
    return MSRSafe(MSRDevice(node))


class TestReads:
    def test_whitelisted_read_allowed(self, safe):
        assert safe.read(MSR_RAPL_POWER_UNIT) > 0

    def test_unlisted_read_denied(self, safe):
        with pytest.raises(MSRPermissionError):
            safe.read(0x1A0)  # IA32_MISC_ENABLE, not in our whitelist

    def test_privileged_read_bypasses_whitelist(self, node):
        safe = MSRSafe(MSRDevice(node), privileged=True)
        # still raises MSRAccessError (unimplemented), but NOT a permission
        # error: privilege check passed through to the device
        from repro.exceptions import MSRAccessError

        with pytest.raises(MSRAccessError):
            safe.read(0x1A0)


class TestWrites:
    def test_read_only_register_write_denied(self, safe):
        with pytest.raises(MSRPermissionError):
            safe.write(MSR_PKG_ENERGY_STATUS, 0)

    def test_unlisted_write_denied(self, safe):
        with pytest.raises(MSRPermissionError):
            safe.write(0x1A0, 0)

    def test_masked_write_applies_allowed_bits(self, safe, node):
        safe.write(IA32_PERF_CTL, 20 << 8)  # 2.0 GHz, within 0xFFFF mask
        assert node.freq_limit == pytest.approx(2.0e9)

    def test_masked_write_preserves_out_of_mask_bits(self, node):
        dev = MSRDevice(node)
        safe = MSRSafe(dev, whitelist={IA32_CLOCK_MODULATION: 0x0E})
        node.set_duty(1.0)
        # attempt to write enable bit (bit 4, outside mask) + level 2:
        # the enable bit must be dropped, so duty stays 1.0
        safe.write(IA32_CLOCK_MODULATION, (1 << 4) | (2 << 1))
        assert node.duty == 1.0

    def test_privileged_write_bypasses_mask(self, node):
        safe = MSRSafe(MSRDevice(node), privileged=True)
        safe.write(IA32_CLOCK_MODULATION, (1 << 4) | (2 << 1))
        assert node.duty == pytest.approx(0.25)


class TestAdministration:
    def test_allow_adds_entry(self, safe):
        safe.allow(0x611)
        # now readable (0x611 is implemented by the device)
        assert isinstance(safe.read(0x611), int)

    def test_default_whitelist_not_shared_between_instances(self, node):
        a = MSRSafe(MSRDevice(node))
        a.allow(0xDEAD, 0xFF)
        b = MSRSafe(MSRDevice(node))
        assert 0xDEAD not in b.whitelist
        assert 0xDEAD not in DEFAULT_WHITELIST
