"""Unit tests for SimulatedNode frequency/duty control and energy."""

import pytest

from repro.exceptions import ConfigurationError
from repro.hardware import SimulatedNode, skylake_config
from repro.hardware.cpu import CoreMode


@pytest.fixture()
def node():
    return SimulatedNode()


class TestFrequencyControl:
    def test_starts_at_nominal(self, node):
        assert node.frequency == pytest.approx(node.cfg.f_nominal)

    def test_set_frequency_snaps_down(self, node):
        applied = node.set_frequency(2.57e9)
        assert applied == pytest.approx(2.5e9)
        assert all(c.freq == applied for c in node.cores)

    def test_set_frequency_below_ladder_raises(self, node):
        with pytest.raises(ConfigurationError):
            node.set_frequency(0.1e9)

    def test_freq_limit_caps_future_settings(self, node):
        node.set_freq_limit(2.0e9)
        applied = node.set_frequency(3.3e9)
        assert applied == pytest.approx(2.0e9)

    def test_freq_limit_lowers_current_frequency(self, node):
        node.set_frequency(3.3e9)
        node.set_freq_limit(1.6e9)
        assert node.frequency == pytest.approx(1.6e9)

    def test_freq_limit_snaps_to_ladder(self, node):
        assert node.set_freq_limit(2.44e9) == pytest.approx(2.4e9)


class TestDutyControl:
    def test_starts_unthrottled(self, node):
        assert node.duty == 1.0

    def test_set_duty_snaps_down(self, node):
        assert node.set_duty(0.6) == pytest.approx(0.5)

    def test_set_duty_exact_level(self, node):
        assert node.set_duty(0.375) == pytest.approx(0.375)

    def test_set_duty_never_below_lowest_level(self, node):
        assert node.set_duty(0.01) == pytest.approx(0.125)

    def test_set_duty_rejects_nonpositive(self, node):
        with pytest.raises(ConfigurationError):
            node.set_duty(0.0)


class TestEnergy:
    def test_accrue_integrates_power(self, node):
        p = node.power().package
        node.accrue(2.0)
        assert node.pkg_energy == pytest.approx(2.0 * p)

    def test_accrue_zero_dt(self, node):
        node.accrue(0.0)
        assert node.pkg_energy == 0.0

    def test_accrue_rejects_negative_dt(self, node):
        with pytest.raises(ConfigurationError):
            node.accrue(-1.0)

    def test_energy_monotonic(self, node):
        last = 0.0
        for _ in range(5):
            node.accrue(0.5)
            assert node.pkg_energy >= last
            last = node.pkg_energy

    def test_dram_energy_accrues(self, node):
        node.cores[0].mode = CoreMode.BUSY
        node.cores[0].bytes_rate = 10e9
        node.accrue(1.0)
        assert node.dram_energy > 0.0

    def test_last_power_tracks_accrual(self, node):
        node.accrue(1.0)
        assert node.last_power.package == pytest.approx(node.pkg_energy)


class TestIdleAll:
    def test_clears_core_state(self, node):
        core = node.cores[3]
        core.mode = CoreMode.BUSY
        core.compute_frac = 0.7
        core.bytes_rate = 5e9
        node.idle_all()
        assert core.mode is CoreMode.IDLE
        assert core.compute_frac == 0.0
        assert core.bytes_rate == 0.0
