"""Unit tests for the package power model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.config import skylake_config
from repro.hardware.cpu import CoreMode, CoreState
from repro.hardware.power import PowerModel


@pytest.fixture()
def cfg():
    return skylake_config()


@pytest.fixture()
def model(cfg):
    return PowerModel(cfg)


def _busy_core(cfg, freq, compute_frac=1.0, bytes_rate=0.0, duty=1.0):
    core = CoreState(core_id=0, freq=freq, duty=duty)
    core.mode = CoreMode.BUSY
    core.compute_frac = compute_frac
    core.bytes_rate = bytes_rate
    return core


class TestCorePower:
    def test_increases_with_frequency(self, cfg, model):
        p_low = model.core_power(_busy_core(cfg, 1.6e9))
        p_high = model.core_power(_busy_core(cfg, 3.3e9))
        assert p_high > p_low

    def test_increases_with_activity(self, cfg, model):
        p_stall = model.core_power(_busy_core(cfg, 3.3e9, compute_frac=0.0))
        p_full = model.core_power(_busy_core(cfg, 3.3e9, compute_frac=1.0))
        assert p_full > p_stall

    def test_duty_reduces_dynamic_power(self, cfg, model):
        p_full = model.core_power(_busy_core(cfg, 3.3e9))
        p_half = model.core_power(_busy_core(cfg, 3.3e9, duty=0.5))
        assert p_half < p_full
        # static power remains, so duty=0.5 is more than half the total
        assert p_half > p_full / 2

    def test_idle_core_draws_mostly_static(self, cfg, model):
        idle = CoreState(core_id=0, freq=3.3e9)
        busy = _busy_core(cfg, 3.3e9)
        assert model.core_power(idle) < 0.3 * model.core_power(busy)

    def test_spin_burns_significant_power(self, cfg, model):
        spin = CoreState(core_id=0, freq=3.3e9)
        spin.mode = CoreMode.SPIN
        busy = _busy_core(cfg, 3.3e9)
        ratio = model.core_power(spin) / model.core_power(busy)
        assert 0.5 < ratio <= 1.0

    def test_compute_bound_24core_power_in_testbed_regime(self, cfg, model):
        cores = [_busy_core(cfg, cfg.f_nominal) for _ in range(24)]
        sample = model.sample(cores)
        assert 130.0 < sample.package < 180.0

    def test_uncore_scales_with_traffic(self, cfg, model):
        quiet = model.sample([_busy_core(cfg, 3.3e9)])
        loud = model.sample([_busy_core(cfg, 3.3e9, bytes_rate=50e9)])
        assert loud.uncore > quiet.uncore
        assert loud.dram > quiet.dram

    def test_sample_is_sum_of_parts(self, cfg, model):
        cores = [_busy_core(cfg, 2.0e9, bytes_rate=1e9) for _ in range(4)]
        s = model.sample(cores)
        assert s.package == pytest.approx(s.cores + s.uncore)
        assert s.total == pytest.approx(s.package + s.dram)


class TestEffectiveAlpha:
    def test_alpha_near_one_at_voltage_floor(self, cfg, model):
        """Below the voltage knee, P_dyn ~ f (alpha ~ 1)."""
        alpha = model.effective_alpha(1.2e9, 1.7e9)
        assert alpha == pytest.approx(1.0, abs=0.05)

    def test_alpha_near_three_at_top_of_ladder(self, cfg, model):
        alpha = model.effective_alpha(2.8e9, 3.3e9)
        assert 2.2 < alpha < 3.5

    def test_alpha_midrange_near_two(self, cfg, model):
        """The paper assumes alpha = 2; the simulator's midrange agrees
        to within ~0.5 — this overlap is what makes the model usable."""
        alpha = model.effective_alpha(1.8e9, 2.8e9)
        assert 1.5 < alpha < 2.6

    @given(st.floats(min_value=1.3e9, max_value=3.6e9))
    def test_alpha_locally_within_physical_range(self, f):
        cfg = skylake_config()
        model = PowerModel(cfg)
        alpha = model.effective_alpha(f - 0.05e9, f + 0.05e9)
        assert 0.9 < alpha < 4.0

    def test_core_power_at_matches_core_power(self, cfg, model):
        core = _busy_core(cfg, 2.5e9)
        assert model.core_power_at(2.5e9, activity=1.0) == pytest.approx(
            model.core_power(core)
        )
