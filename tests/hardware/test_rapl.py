"""Integration tests for the RAPL firmware controller.

These drive synthetic workloads on the engine and verify the behaviours
the paper measures: cap enforcement, application-aware frequency choice
(Fig. 2), DDCM engagement at stringent caps, and turbo with headroom.
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.hardware import SimulatedNode
from repro.hardware.rapl import RaplFirmware
from repro.runtime.engine import Engine, Work

# Per-iteration kernels: compute-bound (LAMMPS-like) and memory-bound
# (STREAM-like) on all 24 cores.
COMPUTE = dict(cycles=0.33e9, bytes=0.0)
MEMBOUND = dict(cycles=0.05e9, bytes=0.6e9)


def run_capped(cap, kernel, *, settle=3.0, measure=3.0, n_cores=24,
               node=None):
    """Run an endless SPMD kernel under a package cap; return
    (node, firmware, average power over the measurement window)."""
    node = node or SimulatedNode()
    engine = Engine(node)
    fw = RaplFirmware(node, engine)
    if cap is not None:
        fw.set_limit(cap)

    def body():
        while True:
            yield Work(**kernel)

    for c in range(n_cores):
        engine.spawn(body(), core_id=c)
    engine.run(until=settle)
    e0, t0 = node.pkg_energy, node.clock.now
    engine.run(until=settle + measure)
    avg = (node.pkg_energy - e0) / (node.clock.now - t0)
    return node, fw, avg


class TestValidation:
    def test_rejects_bad_interval(self):
        node = SimulatedNode()
        with pytest.raises(ConfigurationError):
            RaplFirmware(node, Engine(node), control_interval=0.0)

    def test_rejects_bad_headroom(self):
        node = SimulatedNode()
        with pytest.raises(ConfigurationError):
            RaplFirmware(node, Engine(node), headroom=1.5)

    def test_rejects_nonpositive_limit(self):
        node = SimulatedNode()
        fw = RaplFirmware(node, Engine(node))
        with pytest.raises(ConfigurationError):
            fw.set_limit(0.0)

    def test_effective_limit_clips_to_tdp(self):
        node = SimulatedNode()
        fw = RaplFirmware(node, Engine(node))
        fw.set_limit(10_000.0)
        assert fw.effective_limit == node.cfg.tdp

    def test_disable_reverts_to_tdp(self):
        node = SimulatedNode()
        fw = RaplFirmware(node, Engine(node))
        fw.set_limit(50.0)
        fw.disable()
        assert fw.effective_limit == node.cfg.tdp


class TestCapEnforcement:
    @pytest.mark.parametrize("cap", [140.0, 100.0, 70.0])
    def test_compute_bound_power_within_cap(self, cap):
        _, _, avg = run_capped(cap, COMPUTE)
        assert avg <= cap * 1.05

    @pytest.mark.parametrize("cap", [120.0, 90.0])
    def test_memory_bound_power_within_cap(self, cap):
        _, _, avg = run_capped(cap, MEMBOUND)
        assert avg <= cap * 1.05

    def test_power_tracks_cap_not_just_below(self):
        """The paper observes capped applications use all the power they
        are given."""
        _, _, avg = run_capped(110.0, COMPUTE)
        assert avg >= 110.0 * 0.90

    def test_frequency_reduced_under_cap(self):
        node, _, _ = run_capped(100.0, COMPUTE)
        assert node.frequency < node.cfg.f_nominal

    def test_uncapped_runs_at_or_above_nominal(self):
        node, _, avg = run_capped(None, COMPUTE)
        assert node.frequency >= node.cfg.f_nominal
        assert avg <= node.cfg.tdp * 1.05


class TestApplicationAware:
    """Paper Fig. 2: under identical caps RAPL runs compute-bound code at
    a higher frequency than memory-bound code."""

    @pytest.mark.parametrize("cap", [120.0, 100.0, 85.0])
    def test_compute_bound_gets_higher_frequency(self, cap):
        node_c, _, _ = run_capped(cap, COMPUTE)
        node_m, _, _ = run_capped(cap, MEMBOUND)
        assert node_c.frequency >= node_m.frequency

    def test_memory_bound_spends_more_budget_in_uncore(self):
        node_c, _, _ = run_capped(100.0, COMPUTE)
        node_m, _, _ = run_capped(100.0, MEMBOUND)
        assert node_m.last_power.uncore > node_c.last_power.uncore


class TestDDCMFallback:
    def test_stringent_cap_engages_duty_modulation(self):
        """Below the bottom of the DVFS ladder the firmware must modulate
        the clock — RAPL's 'additional means' (paper Section VI-B2)."""
        node, _, avg = run_capped(38.0, MEMBOUND, settle=4.0)
        assert node.frequency == node.cfg.f_min
        assert node.duty < 1.0
        assert avg <= 38.0 * 1.10

    def test_capping_scales_the_uncore(self):
        """Active enforcement engages uncore DVFS (the RAPL feature the
        paper lists as unmodeled); uncapped runs keep the uncore at full
        speed."""
        node_capped, _, _ = run_capped(80.0, MEMBOUND)
        assert node_capped.uncore_scale < 1.0
        node_free, _, _ = run_capped(None, MEMBOUND)
        assert node_free.uncore_scale == 1.0

    def test_mild_cap_does_not_touch_duty(self):
        node, _, _ = run_capped(130.0, COMPUTE)
        assert node.duty == 1.0

    def test_duty_restored_when_cap_lifted(self):
        node = SimulatedNode()
        engine = Engine(node)
        fw = RaplFirmware(node, engine)
        fw.set_limit(38.0)

        def body():
            while True:
                yield Work(**MEMBOUND)

        for c in range(24):
            engine.spawn(body(), core_id=c)
        engine.run(until=4.0)
        assert node.duty < 1.0
        fw.set_limit(160.0)
        engine.run(until=8.0)
        assert node.duty == 1.0


class TestTurbo:
    def test_light_load_turbos_above_nominal(self):
        """With most cores idle there is package headroom: the controller
        should climb into turbo bins (Turbo-Boost enabled, as on the
        paper's testbed)."""
        node, _, _ = run_capped(None, COMPUTE, n_cores=4)
        assert node.frequency > node.cfg.f_nominal

    def test_turbo_respects_userspace_ceiling(self):
        node = SimulatedNode()
        node.set_freq_limit(node.cfg.f_nominal)
        node2, _, _ = run_capped(None, COMPUTE, n_cores=4, node=node)
        assert node2.frequency <= node2.cfg.f_nominal


class TestMeasurement:
    def test_measure_average_power_none_without_elapsed_time(self):
        node = SimulatedNode()
        fw = RaplFirmware(node, Engine(node))
        assert fw.measure_average_power(node.clock.now) is None

    def test_stop_cancels_tick(self):
        node = SimulatedNode()
        engine = Engine(node)
        fw = RaplFirmware(node, engine)
        fw.set_limit(80.0)
        fw.stop()

        def body():
            yield Work(**COMPUTE)

        engine.spawn(body(), core_id=0)
        engine.run()
        # firmware never ran: frequency untouched
        assert node.frequency == node.cfg.f_nominal
