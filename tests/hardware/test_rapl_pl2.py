"""Tests for PL1/PL2 dual-limit enforcement."""

import pytest

from repro.exceptions import ConfigurationError
from repro.hardware import SimulatedNode
from repro.hardware.msr import MSR_PKG_POWER_LIMIT, MSRDevice, PowerLimit, \
    decode_power_limit, encode_power_limit
from repro.hardware.rapl import RaplFirmware
from repro.runtime.engine import Engine, Work

COMPUTE = dict(cycles=0.33e9)


def run_loaded(fw_setup, duration=5.0):
    node = SimulatedNode()
    engine = Engine(node)
    fw = RaplFirmware(node, engine)
    fw_setup(fw)

    def body():
        while True:
            yield Work(**COMPUTE)

    for c in range(24):
        engine.spawn(body(), core_id=c)
    engine.run(until=duration)
    e0, t0 = node.pkg_energy, node.clock.now
    engine.run(until=duration + 3.0)
    avg = (node.pkg_energy - e0) / (node.clock.now - t0)
    return node, fw, avg


class TestPL2:
    def test_default_pl2_above_tdp(self):
        node = SimulatedNode()
        fw = RaplFirmware(node, Engine(node))
        assert fw.limit2 == pytest.approx(1.2 * node.cfg.tdp)

    def test_pl2_below_pl1_dominates(self):
        """With PL1 at TDP but PL2 at 90 W, settled power obeys PL2."""
        node, fw, avg = run_loaded(lambda fw: fw.set_limit2(90.0))
        assert avg <= 90.0 * 1.08

    def test_pl2_validation(self):
        node = SimulatedNode()
        fw = RaplFirmware(node, Engine(node))
        with pytest.raises(ConfigurationError):
            fw.set_limit2(0.0)

    def test_windowed_power_tracked(self):
        node, fw, avg = run_loaded(lambda fw: fw.set_limit(100.0))
        assert fw.windowed_power == pytest.approx(avg, rel=0.15)


class TestPL2MsrWiring:
    def test_write_programs_both_limits(self):
        node = SimulatedNode()
        fw = RaplFirmware(node, Engine(node))
        dev = MSRDevice(node, fw)
        pl1 = PowerLimit(100.0, True, True, 1.0)
        pl2 = PowerLimit(130.0, True, False, 0.01)
        dev.write(MSR_PKG_POWER_LIMIT, encode_power_limit(pl1, pl2))
        assert fw.limit == pytest.approx(100.0)
        assert fw.limit2 == pytest.approx(130.0)

    def test_read_reports_both_limits(self):
        node = SimulatedNode()
        fw = RaplFirmware(node, Engine(node))
        fw.set_limit(95.0)
        fw.set_limit2(120.0)
        dev = MSRDevice(node, fw)
        pl1, pl2, _ = decode_power_limit(dev.read(MSR_PKG_POWER_LIMIT))
        assert pl1.watts == pytest.approx(95.0)
        assert pl2.watts == pytest.approx(120.0)

    def test_pl1_only_write_leaves_pl2(self):
        node = SimulatedNode()
        fw = RaplFirmware(node, Engine(node))
        before = fw.limit2
        dev = MSRDevice(node, fw)
        dev.write(MSR_PKG_POWER_LIMIT,
                  encode_power_limit(PowerLimit(80.0, True, True, 1.0)))
        assert fw.limit == pytest.approx(80.0)
        assert fw.limit2 == before
