"""Integration: two applications co-located on one node.

The paper runs one application per node; co-location exercises paths the
single-app experiments cannot — heterogeneous memory contention between
task groups, and RAPL reacting to the *mixed* workload.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.apps import build
from repro.hardware import SimulatedNode
from repro.hardware.rapl import RaplFirmware
from repro.runtime.engine import Engine
from repro.telemetry import MessageBus, ProgressMonitor


def run_colocated(cap=None, duration=12.0, seed=0):
    node = SimulatedNode()
    engine = Engine(node)
    fw = RaplFirmware(node, engine)
    if cap is not None:
        fw.set_limit(cap)
    bus = MessageBus(node.clock)
    pub = bus.pub_socket()
    engine.on_publish(lambda t, topic, v: pub.send(topic, v))

    lammps = build("lammps", n_steps=1_000_000, n_workers=12, seed=seed)
    stream = build("stream", n_iterations=1_000_000, n_workers=12,
                   seed=seed + 1)
    monitors = {
        "lammps": ProgressMonitor(engine, bus.sub_socket(lammps.topic)),
        "stream": ProgressMonitor(engine, bus.sub_socket(stream.topic)),
    }
    lammps.launch(engine, core_offset=0)
    stream.launch(engine, core_offset=12)
    engine.run(until=duration)
    return node, monitors


class TestColocation:
    def test_both_apps_progress(self):
        node, monitors = run_colocated()
        for name, mon in monitors.items():
            assert mon.series.window(3.0, 12.1).mean() > 0.0, name

    def test_weak_scaling_rate_independent_of_worker_count(self):
        """The synthetic kernels are weak-scaling: per-worker work per
        iteration is fixed, so the colocated 12-worker LAMMPS still steps
        at ~20/s and STREAM's traffic (12 cores, ~90 GB/s) leaves it
        uncontended."""
        node, monitors = run_colocated()
        rate = monitors["lammps"].series.window(3.0, 12.1).mean()
        assert rate == pytest.approx(820_000, rel=0.1)

    def test_cap_throttles_both(self):
        _, free = run_colocated(cap=None)
        _, capped = run_colocated(cap=90.0)
        for name in ("lammps", "stream"):
            r_free = free[name].series.window(6.0, 12.1).mean()
            r_capped = capped[name].series.window(6.0, 12.1).mean()
            assert r_capped < r_free, name

    def test_mixed_workload_power_within_cap(self):
        node, _ = run_colocated(cap=100.0)
        # settled instantaneous power respects the cap
        assert node.last_power.package <= 100.0 * 1.08

    def test_mixed_workload_sits_between_pure_workloads(self):
        """Uncapped mixed power lies between pure-LAMMPS and pure-STREAM
        levels scaled for the worker split."""
        node, _ = run_colocated()
        assert 100.0 < node.last_power.package < 175.0
