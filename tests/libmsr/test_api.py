"""Integration tests for the libmsr-style API over msr-safe."""

import pytest

from repro.exceptions import MSRError
from repro.hardware import SimulatedNode
from repro.hardware.msr import MSRDevice
from repro.hardware.msr_safe import MSRSafe
from repro.hardware.rapl import RaplFirmware
from repro.libmsr import LibMSR
from repro.runtime.engine import Engine, Work


@pytest.fixture()
def stack():
    node = SimulatedNode()
    engine = Engine(node)
    fw = RaplFirmware(node, engine)
    lib = LibMSR(MSRSafe(MSRDevice(node, fw)), node.clock)
    return node, engine, fw, lib


class TestUnits:
    def test_units_match_config(self, stack):
        node, _, _, lib = stack
        assert lib.units.power == node.cfg.power_unit
        assert lib.units.energy == node.cfg.energy_unit

    def test_tdp(self, stack):
        node, _, _, lib = stack
        assert lib.get_tdp() == pytest.approx(node.cfg.tdp)


class TestPowerLimits:
    def test_set_and_get_roundtrip(self, stack):
        _, _, fw, lib = stack
        lib.set_pkg_power_limit(95.0, window=0.01)
        pl = lib.get_pkg_power_limit()
        assert pl.watts == pytest.approx(95.0)
        assert pl.enabled
        assert fw.limit == pytest.approx(95.0)

    def test_set_limit_drives_firmware(self, stack):
        node, engine, _, lib = stack
        lib.set_pkg_power_limit(90.0)

        def body():
            while True:
                yield Work(cycles=0.33e9)

        for c in range(24):
            engine.spawn(body(), core_id=c)
        engine.run(until=3.0)
        assert node.frequency < node.cfg.f_nominal

    def test_remove_limit_disables_capping(self, stack):
        _, _, fw, lib = stack
        lib.set_pkg_power_limit(50.0)
        lib.remove_pkg_power_limit()
        assert not fw.enabled

    def test_rejects_nonpositive_limit(self, stack):
        _, _, _, lib = stack
        with pytest.raises(MSRError):
            lib.set_pkg_power_limit(0.0)


class TestEnergyPolling:
    def test_first_poll_primes(self, stack):
        _, _, _, lib = stack
        assert lib.poll_power() is None

    def test_poll_measures_average_power(self, stack):
        node, engine, _, lib = stack
        lib.poll_power()

        def body():
            while True:
                yield Work(cycles=0.33e9)

        for c in range(24):
            engine.spawn(body(), core_id=c)
        engine.run(until=2.0)
        poll = lib.poll_power()
        assert poll.seconds == pytest.approx(2.0)
        # average power should match the node's energy integral
        assert poll.pkg_watts == pytest.approx(
            node.pkg_energy / 2.0, rel=0.01
        )
        assert poll.dram_joules >= 0.0

    def test_poll_handles_counter_wraparound(self, stack):
        node, _, _, lib = stack
        # place the counter just below the 32-bit wrap point
        node.pkg_energy = ((1 << 32) - 10) * node.cfg.energy_unit
        lib.poll_power()
        node.pkg_energy += 20 * node.cfg.energy_unit
        node.clock.advance(1.0)
        poll = lib.poll_power()
        assert poll.pkg_joules == pytest.approx(20 * node.cfg.energy_unit)

    def test_zero_interval_power_raises(self, stack):
        _, _, _, lib = stack
        lib.poll_power()
        poll = lib.poll_power()  # same timestamp
        with pytest.raises(MSRError):
            _ = poll.pkg_watts
