"""Checkpoint-coverage rules against deliberately broken fixture classes.

Each fixture is the minimal version of a real failure mode the rule
exists to catch: an attribute assigned in ``__init__`` and mutated later
but absent from ``snapshot()``, a ``restore()`` reading a key
``snapshot()`` never writes, and a snapshot with no version field.
"""

import textwrap

from repro.lint import lint_source


def _ids(source: str) -> list[str]:
    return [f.rule for f in lint_source(textwrap.dedent(source))]


#: A correct component: every mutated attribute covered, keys symmetric,
#: version field present and checked.
CLEAN = """
    class Counter:
        def __init__(self):
            self.total = 0.0
            self._timer = None  # wiring, never mutated after init

        def tick(self, value):
            self.total += value

        def snapshot(self):
            return {"version": 1, "total": self.total}

        def restore(self, state):
            if state.get("version", 1) != 1:
                raise ValueError("schema mismatch")
            self.total = state["total"]
"""


class TestCleanFixtureStaysQuiet:
    def test_no_findings(self):
        assert _ids(CLEAN) == []


class TestAttributeCoverage:
    def test_mutated_attribute_missing_from_snapshot_fires(self):
        # `dropped` is assigned in __init__ and mutated in tick() but
        # neither snapshotted nor restored: a round-trip silently resets
        # it — exactly the bug class the tentpole motivates.
        findings = _ids("""
            class Counter:
                def __init__(self):
                    self.total = 0.0
                    self.dropped = 0

                def tick(self, value, lost):
                    self.total += value
                    self.dropped += lost

                def snapshot(self):
                    return {"version": 1, "total": self.total}

                def restore(self, state):
                    self.total = state["total"]
        """)
        assert "ckpt-attr-coverage" in findings

    def test_init_only_attributes_are_quiet(self):
        # Attributes never reassigned after __init__ are rebuilt by the
        # stack assembly and need no snapshot coverage.
        assert "ckpt-attr-coverage" not in _ids(CLEAN)

    def test_classes_without_the_pair_are_ignored(self):
        assert _ids("""
            class Plain:
                def __init__(self):
                    self.total = 0.0

                def tick(self, value):
                    self.total += value
        """) == []


class TestKeyDrift:
    def test_restore_reads_unwritten_key_fires(self):
        findings = _ids("""
            class Counter:
                def __init__(self):
                    self.total = 0.0

                def snapshot(self):
                    return {"version": 1, "total": self.total}

                def restore(self, state):
                    self.total = state["total"]
                    self.offset = state["offset"]
        """)
        assert "ckpt-key-drift" in findings

    def test_snapshot_writes_unread_key_fires(self):
        findings = _ids("""
            class Counter:
                def __init__(self):
                    self.total = 0.0
                    self.offset = 0.0

                def snapshot(self):
                    return {"version": 1, "total": self.total,
                            "offset": self.offset}

                def restore(self, state):
                    self.total = state["total"]
        """)
        assert "ckpt-key-drift" in findings

    def test_version_key_needs_no_read(self):
        # `version` may be consumed by a shared helper rather than a
        # literal state["version"] read; the drift rule exempts it.
        assert "ckpt-key-drift" not in _ids(CLEAN)

    def test_get_counts_as_a_read(self):
        assert "ckpt-key-drift" not in _ids("""
            class Counter:
                def __init__(self):
                    self.total = 0.0

                def snapshot(self):
                    return {"version": 1, "total": self.total}

                def restore(self, state):
                    self.total = state.get("total", 0.0)
        """)

    def test_nested_dict_keys_balance(self):
        # Engine-style nesting: per-task dicts inside the state dict are
        # written as literals and read back through iteration.
        assert "ckpt-key-drift" not in _ids("""
            class Engine:
                def __init__(self):
                    self.tasks = []

                def snapshot(self):
                    return {"version": 1,
                            "tasks": [{"tid": t.tid, "done": t.done}
                                      for t in self.tasks]}

                def restore(self, state):
                    for t, rec in zip(self.tasks, state["tasks"]):
                        t.tid = rec["tid"]
                        t.done = rec["done"]
        """)


class TestMissingVersion:
    def test_versionless_snapshot_fires(self):
        findings = _ids("""
            class Counter:
                def __init__(self):
                    self.total = 0.0

                def snapshot(self):
                    return {"total": self.total}

                def restore(self, state):
                    self.total = state["total"]
        """)
        assert "ckpt-missing-version" in findings

    def test_super_extending_subclass_is_exempt(self):
        # Subclasses that extend super().snapshot() inherit the base
        # class's version field (the UrbanApp/CandleApp pattern).
        findings = _ids("""
            class Sub(Base):
                def snapshot(self):
                    state = super().snapshot()
                    state["extra"] = self.extra
                    return state

                def restore(self, state):
                    super().restore(state)
                    self.extra = state["extra"]
        """)
        assert "ckpt-missing-version" not in findings

    def test_point_in_time_snapshot_readers_are_ignored(self):
        # CounterBank.snapshot(self, time) is a measurement API, not the
        # checkpoint protocol; extra parameters exclude the class.
        assert _ids("""
            class CounterBank:
                def snapshot(self, time):
                    return {"t": time}

                def restore(self, state):
                    pass
        """) == []


class TestSoaFieldCoverage:
    """ckpt-soa-coverage: classes declaring ``_SOA_FIELDS`` (the vector
    engine's structure-of-arrays state) must move every listed field
    through snapshot() and restore()."""

    COVERED = """
        class Group:
            _SOA_FIELDS = ("now", "energy")

            def snapshot(self, slot):
                return {"now": float(self.now[slot]),
                        "energy": float(self.energy[slot])}

            def restore(self, slot, state):
                self.now[slot] = state["now"]
                self.energy[slot] = state["energy"]
    """

    def test_full_coverage_stays_quiet(self):
        assert _ids(self.COVERED) == []

    def test_field_missing_from_snapshot_fires(self):
        findings = _ids("""
            class Group:
                _SOA_FIELDS = ("now", "energy")

                def snapshot(self, slot):
                    return {"now": float(self.now[slot])}

                def restore(self, slot, state):
                    self.now[slot] = state["now"]
                    self.energy[slot] = state["energy"]
        """)
        assert "ckpt-soa-coverage" in findings

    def test_field_missing_from_restore_fires(self):
        findings = _ids("""
            class Group:
                _SOA_FIELDS = ("now", "energy")

                def snapshot(self, slot):
                    return {"now": float(self.now[slot]),
                            "energy": float(self.energy[slot])}

                def restore(self, slot, state):
                    self.now[slot] = state["now"]
        """)
        assert "ckpt-soa-coverage" in findings

    def test_missing_methods_fire(self):
        findings = _ids("""
            class Group:
                _SOA_FIELDS = ("now",)
        """)
        assert findings.count("ckpt-soa-coverage") == 2

    def test_non_literal_field_lists_are_ignored(self):
        # A computed field list is out of syntactic reach; the rule
        # stays quiet rather than guessing.
        assert _ids("""
            class Group:
                _SOA_FIELDS = tuple(NAMES)

                def snapshot(self, slot):
                    return {}
        """) == []

    def test_suppression_comment_silences(self):
        findings = _ids("""
            class Group:
                _SOA_FIELDS = ("now", "energy")

                def snapshot(self, slot):  # repro-lint: disable=ckpt-soa-coverage
                    return {"now": float(self.now[slot])}

                def restore(self, slot, state):
                    self.now[slot] = state["now"]
                    self.energy[slot] = state["energy"]
        """)
        assert "ckpt-soa-coverage" not in findings
