"""CLI, output formats, rule selection, and the self-check that the
shipped tree stays clean."""

import json
import os
import subprocess
import sys

import pytest

from repro.lint import ALL_RULES, lint_paths, lint_source, select_rules
from repro.lint.__main__ import main

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

BAD = """import time

def stamp():
    return time.time()
"""


@pytest.fixture()
def bad_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD)
    return str(path)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one(self, bad_file, capsys):
        assert main([bad_file]) == 1
        out = capsys.readouterr().out
        assert "det-wallclock" in out
        assert "bad.py:4:" in out

    def test_parse_error_exits_two(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        assert main([str(tmp_path)]) == 2
        assert "broken.py" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, bad_file, capsys):
        assert main(["--rules", "no-such-rule", bad_file]) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestJsonOutput:
    def test_findings_are_structured(self, bad_file, capsys):
        assert main(["--format", "json", bad_file]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == []
        (finding,) = [f for f in payload["findings"]
                      if f["rule"] == "det-wallclock"]
        assert finding["family"] == "determinism"
        assert finding["line"] == 4
        assert finding["path"] == bad_file

    def test_clean_tree_is_empty(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["--format", "json", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"findings": [], "errors": []}


class TestRuleSelection:
    def test_select_by_id(self, bad_file):
        findings, errors = lint_paths([bad_file],
                                      select_rules(["det-wallclock"]))
        assert errors == []
        assert {f.rule for f in findings} == {"det-wallclock"}

    def test_select_by_family(self):
        rules = select_rules(["checkpoint"])
        assert {r.family for r in rules} == {"checkpoint"}
        assert len(rules) == 4

    def test_unknown_token_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            select_rules(["bogus"])

    def test_list_rules_covers_all_five_families(self):
        assert {r.family for r in ALL_RULES} == {
            "determinism", "checkpoint", "picklable", "units",
            "concurrency"}

    def test_select_concurrency_family(self):
        rules = select_rules(["concurrency"])
        assert {r.id for r in rules} == {
            "conc-unguarded-write", "conc-lock-order",
            "conc-blocking-under-lock"}


class TestSuppressionSyntax:
    def test_multiple_rules_one_comment(self):
        src = ("import os, time\n"
               "x = os.environ.get('A') or time.time()"
               "  # repro-lint: disable=det-environ,det-wallclock\n")
        assert lint_source(src) == []

    def test_suppression_is_line_scoped(self):
        src = ("import time\n"
               "a = time.time()  # repro-lint: disable=det-wallclock\n"
               "b = time.time()\n")
        assert [f.line for f in lint_source(src)] == [3]

    def test_other_rules_still_fire(self):
        src = ("import time\n"
               "a = time.time()  # repro-lint: disable=det-environ\n")
        assert [f.rule for f in lint_source(src)] == ["det-wallclock"]


class TestModuleEntryPoint:
    def test_python_dash_m_runs(self, bad_file):
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", bad_file],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 1
        assert "det-wallclock" in proc.stdout


class TestShippedTreeIsClean:
    def test_src_repro_has_no_findings(self):
        # The CI gate in code form: the tree this test ships with must
        # lint clean, suppressions included.
        findings, errors = lint_paths([os.path.join(REPO_SRC, "repro")],
                                      ALL_RULES)
        assert errors == []
        assert findings == []
