"""Concurrency rules: fire on lock-discipline breaks, stay quiet on
the disciplined shapes the daemon stack actually uses."""

import textwrap

from repro.lint import lint_source, select_rules
from repro.lint.core import lint_project, parse_module
from repro.lint.project import Project

CONC = select_rules(["concurrency"])


def _ids(source: str) -> list[str]:
    return [f.rule for f in lint_source(textwrap.dedent(source),
                                        rules=CONC)]


def _project_findings(**sources: str):
    modules = [parse_module(f"src/pkg/{name}.py",
                            textwrap.dedent(src))
               for name, src in sorted(sources.items())]
    return lint_project(Project(modules), CONC)


def _project_ids(**sources: str) -> list[str]:
    return [f.rule for f in _project_findings(**sources)]


# ----------------------------------------------------------------------
# conc-unguarded-write: lock discipline within a class
# ----------------------------------------------------------------------


class TestWriteDiscipline:
    def test_split_locked_unlocked_writes_fire(self):
        assert "conc-unguarded-write" in _ids("""
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []

                def put(self, x):
                    with self._lock:
                        self.items.append(x)

                def rogue(self, x):
                    self.items.append(x)
        """)

    def test_all_writes_guarded_is_quiet(self):
        assert _ids("""
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []

                def put(self, x):
                    with self._lock:
                        self.items.append(x)

                def clear(self):
                    with self._lock:
                        self.items = []
        """) == []

    def test_init_writes_are_exempt(self):
        # Construction happens before the object is shared; only
        # post-construction writes split the discipline.
        assert _ids("""
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []
                    self.items.append(0)

                def put(self, x):
                    with self._lock:
                        self.items.append(x)
        """) == []

    def test_private_helper_inherits_callers_lock(self):
        # _bump is only ever called with the lock held, so its write is
        # guarded even though no ``with`` is lexically visible in it.
        assert _ids("""
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0

                def bump(self):
                    with self._lock:
                        self._bump()

                def reset(self):
                    with self._lock:
                        self.n = 0

                def _bump(self):
                    self.n += 1
        """) == []

    def test_sanitize_tracked_lock_is_a_lock(self):
        assert "conc-unguarded-write" in _ids("""
            from repro import sanitize

            class Box:
                def __init__(self):
                    self._lock = sanitize.tracked_rlock("Box._lock")
                    self.items = []

                def put(self, x):
                    with self._lock:
                        self.items.append(x)

                def rogue(self, x):
                    self.items.append(x)
        """)

    def test_callback_context_is_exempt(self):
        # _on_event is registered as a value; its entry context is
        # unknowable, so its write must not count as unguarded.
        assert _ids("""
            import threading

            class Counter:
                def __init__(self, bus):
                    self._lock = threading.Lock()
                    self.count = 0
                    bus.subscribe(self._on_event)

                def _on_event(self, msg):
                    self.count += 1

                def reset(self):
                    with self._lock:
                        self.count = 0
        """) == []

    def test_suppression_comment_silences(self):
        assert _ids("""
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.ready = False

                def arm(self):
                    with self._lock:
                        self.ready = True

                def prearm(self):
                    self.ready = True  # repro-lint: disable=conc-unguarded-write
        """) == []


class TestThreadRootRaces:
    RACE = """
        import threading

        class Server:
            def __init__(self):
                self.jobs = []
                self.thread = threading.Thread(target=self._loop)

            def _loop(self):
                while True:
                    self.jobs.append(1)

            def drain(self):
                return list(self.jobs)
    """

    def test_cross_root_mutation_fires(self):
        assert "conc-unguarded-write" in _ids(self.RACE)

    def test_common_lock_serialises(self):
        assert _ids("""
            import threading

            class Server:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.jobs = []
                    self.thread = threading.Thread(target=self._loop)

                def _loop(self):
                    with self._lock:
                        self.jobs.append(1)

                def drain(self):
                    with self._lock:
                        return list(self.jobs)
        """) == []

    def test_no_thread_spawn_no_root_check(self):
        # Same accesses, but nothing spawns a thread: single-threaded
        # classes mutate freely.
        assert _ids("""
            class Server:
                def __init__(self):
                    self.jobs = []

                def push(self):
                    self.jobs.append(1)

                def drain(self):
                    return list(self.jobs)
        """) == []

    def test_event_set_is_not_a_mutation(self):
        # ``Event.set()`` (and ``Gauge.set``) must not read as a
        # collection mutation.
        assert _ids("""
            import threading

            class Worker:
                def __init__(self):
                    self.stop = threading.Event()
                    self.thread = threading.Thread(target=self._run)

                def _run(self):
                    while not self.stop.is_set():
                        pass

                def shutdown(self):
                    self.stop.set()
        """) == []


class TestCrossModuleRace:
    """The shape that found the real ``_ClientConn.watch_ids`` race:
    a server thread mutating a per-connection set typed only through a
    ``dict[int, Conn]`` annotation in another module."""

    CONN = """
        import threading

        class Conn:
            def __init__(self):
                self.wlock = threading.Lock()
                self.ids = set()
    """

    def test_unguarded_neighbour_mutation_fires(self):
        findings = _project_findings(conn=self.CONN, server="""
            import threading

            from pkg.conn import Conn

            class Server:
                def __init__(self):
                    self._conns: dict[int, Conn] = {}
                    self.thread = threading.Thread(target=self._loop)

                def _loop(self):
                    for conn in list(self._conns.values()):
                        conn.ids.add(1)

                def register(self, key, conn: Conn):
                    self._conns[key] = conn
                    conn.ids.add(key)
        """)
        hits = [f for f in findings if f.rule == "conc-unguarded-write"
                and "Conn.ids" in f.message]
        assert hits, [f.message for f in findings]

    def test_guarded_neighbour_mutation_is_quiet(self):
        ids = _project_ids(conn=self.CONN, server="""
            import threading

            from pkg.conn import Conn

            class Server:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._conns: dict[int, Conn] = {}
                    self.thread = threading.Thread(target=self._loop)

                def _loop(self):
                    with self._lock:
                        conns = list(self._conns.values())
                    for conn in conns:
                        with conn.wlock:
                            conn.ids.add(1)

                def register(self, key, conn: Conn):
                    with self._lock:
                        self._conns[key] = conn
                    with conn.wlock:
                        conn.ids.add(key)
        """)
        assert ids == []


# ----------------------------------------------------------------------
# conc-lock-order
# ----------------------------------------------------------------------


class TestLockOrder:
    def test_both_orders_fire_once(self):
        ids = _ids("""
            import threading

            class AB:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()

                def fwd(self):
                    with self.a:
                        with self.b:
                            pass

                def rev(self):
                    with self.b:
                        with self.a:
                            pass
        """)
        assert ids.count("conc-lock-order") == 1

    def test_consistent_order_is_quiet(self):
        assert _ids("""
            import threading

            class AB:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()

                def one(self):
                    with self.a:
                        with self.b:
                            pass

                def two(self):
                    with self.a:
                        with self.b:
                            pass
        """) == []

    def test_cycle_through_a_call_fires(self):
        # fwd nests lexically; rev holds b and *calls* a method that
        # acquires a — the edge must follow the call.
        assert "conc-lock-order" in _ids("""
            import threading

            class AB:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()

                def fwd(self):
                    with self.a:
                        with self.b:
                            pass

                def rev(self):
                    with self.b:
                        self.take_a()

                def take_a(self):
                    with self.a:
                        pass
        """)

    def test_rlock_reentry_is_quiet(self):
        assert _ids("""
            import threading

            class R:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
        """) == []

    def test_lock_reentry_fires(self):
        assert "conc-lock-order" in _ids("""
            import threading

            class R:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
        """)


# ----------------------------------------------------------------------
# conc-blocking-under-lock
# ----------------------------------------------------------------------


class TestBlockingUnderLock:
    def test_sleep_under_lock_fires(self):
        assert "conc-blocking-under-lock" in _ids("""
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait(self):
                    with self._lock:
                        time.sleep(0.1)
        """)

    def test_sleep_outside_lock_is_quiet(self):
        assert _ids("""
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait(self):
                    with self._lock:
                        pass
                    time.sleep(0.1)
        """) == []

    def test_thread_join_under_lock_fires(self):
        assert "conc-blocking-under-lock" in _ids("""
            import threading

            class Waiter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.thread = threading.Thread(target=self._run)

                def _run(self):
                    pass

                def stop(self):
                    with self._lock:
                        self.thread.join()
        """)

    def test_str_join_under_lock_is_quiet(self):
        # one non-numeric positional argument: str.join, not a thread
        assert _ids("""
            import threading

            class Fmt:
                def __init__(self):
                    self._lock = threading.Lock()

                def render(self, parts):
                    with self._lock:
                        return ", ".join(parts)
        """) == []

    def test_recv_under_lock_fires(self):
        assert "conc-blocking-under-lock" in _ids("""
            import threading

            class Pipe:
                def __init__(self, conn):
                    self._lock = threading.Lock()
                    self.conn = conn

                def pull(self):
                    with self._lock:
                        return self.conn.recv()
        """)

    def test_recv_all_is_not_blocking(self):
        # a non-blocking drain named recv_all must not match ``recv``
        assert _ids("""
            import threading

            class Pipe:
                def __init__(self, sub):
                    self._lock = threading.Lock()
                    self.sub = sub

                def drain(self):
                    with self._lock:
                        return self.sub.recv_all()
        """) == []

    def test_blocking_in_private_helper_under_callers_lock_fires(self):
        # the held context must propagate into the helper
        assert "conc-blocking-under-lock" in _ids("""
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait(self):
                    with self._lock:
                        self._nap()

                def _nap(self):
                    time.sleep(0.1)
        """)
