"""Determinism rules: fire on host-state reads, stay quiet on seeded code."""

import textwrap

from repro.lint import lint_source


def _ids(source: str) -> list[str]:
    return [f.rule for f in lint_source(textwrap.dedent(source))]


class TestWallClock:
    def test_time_time_fires(self):
        assert "det-wallclock" in _ids("""
            import time

            def stamp():
                return time.time()
        """)

    def test_aliased_import_fires(self):
        assert "det-wallclock" in _ids("""
            import time as t

            def stamp():
                return t.perf_counter()
        """)

    def test_from_import_fires(self):
        assert "det-wallclock" in _ids("""
            from time import monotonic

            def stamp():
                return monotonic()
        """)

    def test_os_urandom_fires(self):
        assert "det-wallclock" in _ids("""
            import os

            def token():
                return os.urandom(8)
        """)

    def test_engine_clock_is_quiet(self):
        assert _ids("""
            def stamp(engine):
                return engine.clock.now
        """) == []

    def test_unrelated_time_attribute_is_quiet(self):
        assert _ids("""
            def read(sample):
                return sample.time
        """) == []


class TestDatetime:
    def test_datetime_now_fires(self):
        assert "det-datetime" in _ids("""
            import datetime

            def stamp():
                return datetime.datetime.now()
        """)

    def test_from_import_now_fires(self):
        assert "det-datetime" in _ids("""
            from datetime import datetime

            def stamp():
                return datetime.now()
        """)

    def test_constructed_datetime_is_quiet(self):
        assert _ids("""
            from datetime import datetime

            def fixed():
                return datetime(2019, 5, 20)
        """) == []


class TestStdlibRandom:
    def test_module_call_fires(self):
        assert "det-random" in _ids("""
            import random

            def draw():
                return random.random()
        """)

    def test_from_import_fires(self):
        assert "det-random" in _ids("""
            from random import randint

            def draw():
                return randint(0, 10)
        """)

    def test_generator_method_named_random_is_quiet(self):
        assert _ids("""
            def draw(rng):
                return rng.random()
        """) == []


class TestNumpyRng:
    def test_unseeded_default_rng_fires(self):
        assert "det-unseeded-rng" in _ids("""
            import numpy as np

            def make():
                return np.random.default_rng()
        """)

    def test_default_rng_none_fires(self):
        assert "det-unseeded-rng" in _ids("""
            import numpy as np

            def make():
                return np.random.default_rng(None)
        """)

    def test_seed_sequence_is_quiet(self):
        assert _ids("""
            import numpy as np

            def make(seed, wid):
                return np.random.default_rng([seed, wid])
        """) == []

    def test_global_numpy_rng_fires(self):
        assert "det-np-global" in _ids("""
            import numpy as np

            def draw(n):
                np.random.seed(0)
                return np.random.rand(n)
        """)


class TestEnviron:
    def test_subscript_read_fires(self):
        assert "det-environ" in _ids("""
            import os

            def cache_dir():
                return os.environ["REPRO_RESULT_CACHE"]
        """)

    def test_get_fires(self):
        assert "det-environ" in _ids("""
            import os

            def cache_dir():
                return os.environ.get("REPRO_RESULT_CACHE")
        """)

    def test_getenv_fires(self):
        assert "det-environ" in _ids("""
            import os

            def cache_dir():
                return os.getenv("REPRO_RESULT_CACHE")
        """)

    def test_environ_write_is_quiet(self):
        # Setting a variable for a child process is CLI plumbing, not a
        # read; only reads make behaviour depend on ambient state.
        assert _ids("""
            import os

            def set_cache(path):
                os.environ["REPRO_RESULT_CACHE"] = path
        """) == []

    def test_suppression_silences_the_line(self):
        assert _ids("""
            import os

            def cache_dir():
                return os.environ.get("X")  # repro-lint: disable=det-environ
        """) == []

    def test_family_suppression_silences_the_line(self):
        assert _ids("""
            import os

            def cache_dir():
                return os.environ.get("X")  # repro-lint: disable=determinism
        """) == []


class TestObsClockModule:
    """The audited obs host-clock module is recognized by path, so it
    needs no per-line suppressions — and nothing else gets the pass."""

    def _ids_at(self, source, path):
        return [f.rule for f in
                lint_source(textwrap.dedent(source), path=path)]

    CLOCK_SOURCE = """
        import time

        def perf_ns():
            return time.perf_counter_ns()

        def wall_s():
            return time.time()
    """

    def test_clock_reads_quiet_in_the_audited_module(self):
        assert self._ids_at(
            self.CLOCK_SOURCE, "src/repro/obs/hostclock.py") == []

    def test_path_match_is_a_suffix_match(self):
        assert self._ids_at(
            self.CLOCK_SOURCE,
            "/root/repo/src/repro/obs/hostclock.py") == []

    def test_other_obs_modules_get_no_pass(self):
        ids = self._ids_at(self.CLOCK_SOURCE, "src/repro/obs/trace.py")
        assert ids.count("det-wallclock") == 2

    def test_lookalike_path_gets_no_pass(self):
        ids = self._ids_at(self.CLOCK_SOURCE,
                           "src/repro/obs/not_hostclock.py")
        assert ids.count("det-wallclock") == 2

    def test_entropy_still_fires_in_the_audited_module(self):
        # The audit covers clocks only; host entropy stays forbidden.
        assert "det-wallclock" in self._ids_at("""
            import os

            def token():
                return os.urandom(8)
        """, "src/repro/obs/hostclock.py")

    def test_datetime_quiet_in_the_audited_module_only(self):
        source = """
            from datetime import datetime, timezone

            def stamp(wall):
                return datetime.fromtimestamp(wall, tz=timezone.utc)

            def now():
                return datetime.now()
        """
        assert self._ids_at(source, "src/repro/obs/hostclock.py") == []
        assert "det-datetime" in self._ids_at(
            source, "src/repro/obs/provenance.py")

    def test_shipped_clock_module_needs_no_suppressions(self):
        import pathlib
        module = pathlib.Path(__file__).parents[2] / "src" / "repro" \
            / "obs" / "hostclock.py"
        assert "repro-lint: disable" not in module.read_text()

    def test_daemon_hostio_is_audited_too(self):
        # repro.daemon confines its wall-clock reads (pacing, socket
        # timeouts) to repro/daemon/hostio.py; the linter must treat it
        # like the obs host-clock module.
        assert self._ids_at(
            self.CLOCK_SOURCE, "src/repro/daemon/hostio.py") == []
        ids = self._ids_at(self.CLOCK_SOURCE,
                           "src/repro/daemon/service.py")
        assert ids.count("det-wallclock") == 2

    def test_shipped_hostio_module_needs_no_suppressions(self):
        import pathlib
        module = pathlib.Path(__file__).parents[2] / "src" / "repro" \
            / "daemon" / "hostio.py"
        assert "repro-lint: disable" not in module.read_text()
