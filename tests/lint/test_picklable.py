"""Shard-boundary picklability rule: boundary dataclasses must declare
only picklable fields."""

import textwrap

from repro.lint import lint_source


def _ids(source: str) -> list[str]:
    return [f.rule for f in lint_source(textwrap.dedent(source))]


class TestFires:
    def test_callable_field_fires(self):
        assert "pickle-boundary-field" in _ids("""
            from dataclasses import dataclass
            from typing import Callable

            @dataclass(frozen=True)
            class StepRequest:
                node_id: int
                on_done: Callable[[int], None]
        """)

    def test_generator_field_fires(self):
        assert "pickle-boundary-field" in _ids("""
            from dataclasses import dataclass
            import numpy as np

            @dataclass
            class RunResult:
                node_id: int
                rng: np.random.Generator
        """)

    def test_lock_field_fires(self):
        assert "pickle-boundary-field" in _ids("""
            from dataclasses import dataclass
            import threading

            @dataclass
            class NodeTelemetry:
                guard: threading.Lock
        """)

    def test_open_file_field_fires(self):
        assert "pickle-boundary-field" in _ids("""
            from dataclasses import dataclass
            from typing import TextIO

            @dataclass
            class ReportSpec:
                out: TextIO
        """)

    def test_string_annotation_fires(self):
        assert "pickle-boundary-field" in _ids("""
            from dataclasses import dataclass

            @dataclass
            class StepRequest:
                callback: "Callable[[float], None]"
        """)

    def test_lambda_default_fires(self):
        assert "pickle-boundary-field" in _ids("""
            from dataclasses import dataclass

            @dataclass
            class StackSpec:
                key: object = lambda x: x
        """)

    def test_optional_callable_fires(self):
        assert "pickle-boundary-field" in _ids("""
            from dataclasses import dataclass
            from typing import Callable

            @dataclass
            class JobResult:
                hook: Callable[[], None] | None = None
        """)


class TestStaysQuiet:
    def test_plain_wire_type_is_quiet(self):
        # The shape of the real StepResult: ints, floats, dicts.
        assert _ids("""
            from dataclasses import dataclass, field

            @dataclass(frozen=True)
            class StepResult:
                node_id: int
                now: float
                energy: float
                rates: dict = field(default_factory=dict)
        """) == []

    def test_non_boundary_class_may_hold_callables(self):
        # Timer lives inside one engine and never crosses a process
        # boundary; its callback field is legitimate.
        assert _ids("""
            from dataclasses import dataclass, field
            from typing import Callable

            @dataclass(order=True)
            class Timer:
                seq: int
                callback: Callable[[float], None] = field(compare=False)
        """) == []

    def test_non_dataclass_is_ignored(self):
        assert _ids("""
            from typing import Callable

            class FakeRequest:
                handler: Callable[[], None]
        """) == []

    def test_suppression_silences_the_field(self):
        assert _ids("""
            from dataclasses import dataclass
            from typing import Callable

            @dataclass
            class DebugRequest:
                probe: Callable[[], None]  # repro-lint: disable=pickle-boundary-field
        """) == []
