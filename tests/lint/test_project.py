"""The cross-module project model: naming, resolution, inheritance."""

import textwrap

from repro.lint.core import parse_module
from repro.lint.project import Project, module_name


def _mod(path: str, source: str):
    return parse_module(path, textwrap.dedent(source))


def _project(*mods):
    return Project(list(mods))


class TestModuleName:
    def test_src_relative(self):
        assert module_name("src/repro/daemon/service.py") == \
            "repro.daemon.service"

    def test_absolute_path_with_src(self):
        assert module_name("/root/repo/src/repro/lint/core.py") == \
            "repro.lint.core"

    def test_package_init_names_the_package(self):
        assert module_name("src/repro/lint/__init__.py") == "repro.lint"

    def test_repro_segment_without_src(self):
        assert module_name("repro/cluster/elastic.py") == \
            "repro.cluster.elastic"

    def test_bare_stem_fallback(self):
        assert module_name("/tmp/xyz/fixture.py") == "fixture"


class TestClassIndex:
    def test_classes_keyed_by_qualname(self):
        proj = _project(_mod("src/pkg/a.py", """
            class Outer:
                class Inner:
                    pass
        """))
        assert "pkg.a.Outer" in proj.classes
        assert "pkg.a.Outer.Inner" in proj.classes

    def test_resolve_same_module_class(self):
        mod = _mod("src/pkg/a.py", """
            class Local:
                pass
        """)
        proj = _project(mod)
        info = proj.resolve_class(mod, "Local")
        assert info is not None and info.qualname == "pkg.a.Local"

    def test_resolve_through_import_alias(self):
        a = _mod("src/pkg/a.py", """
            class Widget:
                pass
        """)
        b = _mod("src/pkg/b.py", """
            from pkg.a import Widget as W
        """)
        proj = _project(a, b)
        info = proj.resolve_class(b, "W")
        assert info is not None and info.qualname == "pkg.a.Widget"

    def test_resolve_through_relative_import(self):
        a = _mod("src/pkg/a.py", """
            class Widget:
                pass
        """)
        b = _mod("src/pkg/b.py", """
            from .a import Widget
        """)
        proj = _project(a, b)
        info = proj.resolve_class(b, "Widget")
        assert info is not None and info.qualname == "pkg.a.Widget"

    def test_unique_bare_name_fallback(self):
        a = _mod("src/pkg/a.py", """
            class OnlyOne:
                pass
        """)
        b = _mod("src/pkg/b.py", "x = 1\n")
        proj = _project(a, b)
        info = proj.resolve_class(b, "OnlyOne")
        assert info is not None and info.qualname == "pkg.a.OnlyOne"

    def test_ambiguous_bare_name_stays_unresolved(self):
        a = _mod("src/pkg/a.py", "class Dup:\n    pass\n")
        b = _mod("src/pkg/b.py", "class Dup:\n    pass\n")
        c = _mod("src/pkg/c.py", "x = 1\n")
        proj = _project(a, b, c)
        assert proj.resolve_class(c, "Dup") is None


class TestAnnotationResolution:
    def _fixture(self):
        a = _mod("src/pkg/a.py", "class T:\n    pass\n")
        b = _mod("src/pkg/b.py", "from pkg.a import T\n")
        return _project(a, b), b

    def _resolve(self, ann: str):
        import ast
        proj, mod = self._fixture()
        node = ast.parse(ann, mode="eval").body
        return proj.resolve_annotation(mod, node)

    def test_plain_name(self):
        assert self._resolve("T").qualname == "pkg.a.T"

    def test_optional_unwrapped(self):
        assert self._resolve("Optional[T]").qualname == "pkg.a.T"

    def test_union_none_unwrapped(self):
        assert self._resolve("T | None").qualname == "pkg.a.T"

    def test_forward_reference_string(self):
        assert self._resolve("'T'").qualname == "pkg.a.T"

    def test_container_subscript_is_not_the_element(self):
        # list[T] as a whole names no project class (element typing is
        # the concurrency scanner's job, not resolve_annotation's)
        assert self._resolve("list[T]") is None

    def test_unknown_name_is_none(self):
        assert self._resolve("Nothing") is None


class TestInheritance:
    def _fixture(self):
        base = _mod("src/pkg/base.py", """
            class Base:
                def shared(self):
                    pass

                def overridden(self):
                    pass
        """)
        sub = _mod("src/pkg/sub.py", """
            from pkg.base import Base

            class Sub(Base):
                def own(self):
                    pass

                def overridden(self):
                    pass
        """)
        proj = _project(base, sub)
        return proj, proj.classes["pkg.sub.Sub"]

    def test_bases_resolve(self):
        proj, sub = self._fixture()
        assert [b.qualname for b in proj.bases_of(sub)] == \
            ["pkg.base.Base"]

    def test_iter_methods_own_first_override_once(self):
        proj, sub = self._fixture()
        seen = [(owner.name, name)
                for owner, name, _fn in proj.iter_methods(sub)]
        assert ("Sub", "own") in seen
        assert ("Sub", "overridden") in seen
        assert ("Base", "shared") in seen
        assert ("Base", "overridden") not in seen

    def test_find_method_walks_bases(self):
        proj, sub = self._fixture()
        owner, fn = proj.find_method(sub, "shared")
        assert owner.name == "Base" and fn.name == "shared"
        assert proj.find_method(sub, "missing") is None
