"""SARIF output: schema shape, rule metadata, CLI integration."""

import json

import pytest

from repro.lint import ALL_RULES, lint_source
from repro.lint.__main__ import main
from repro.lint.sarif import SARIF_VERSION, to_sarif

BAD = """import time

def stamp():
    return time.time()
"""


@pytest.fixture()
def bad_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD)
    return str(path)


class TestToSarif:
    def test_log_shape(self):
        log = to_sarif([], ALL_RULES)
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert run["results"] == []
        assert run["invocations"][0]["executionSuccessful"] is True

    def test_all_registered_rules_get_descriptors(self):
        log = to_sarif([], ALL_RULES)
        descriptors = log["runs"][0]["tool"]["driver"]["rules"]
        assert {d["id"] for d in descriptors} == \
            {r.id for r in ALL_RULES}
        for d in descriptors:
            assert d["shortDescription"]["text"]
            assert d["defaultConfiguration"]["level"] == "error"
            assert d["properties"]["family"]

    def test_findings_become_results(self):
        findings = lint_source(BAD, path="./src/bad.py")
        log = to_sarif(findings, ALL_RULES)
        (result,) = [r for r in log["runs"][0]["results"]
                     if r["ruleId"] == "det-wallclock"]
        loc = result["locations"][0]["physicalLocation"]
        # URI is relative POSIX style, no leading ./
        assert loc["artifactLocation"]["uri"] == "src/bad.py"
        # SARIF lines and columns are 1-based
        assert loc["region"]["startLine"] == 4
        assert loc["region"]["startColumn"] >= 1
        assert result["level"] == "error"
        assert result["message"]["text"]

    def test_errors_become_notifications(self):
        log = to_sarif([], ALL_RULES, errors=["x.py: bad syntax"])
        inv = log["runs"][0]["invocations"][0]
        assert inv["executionSuccessful"] is False
        assert inv["toolExecutionNotifications"][0]["message"]["text"] \
            == "x.py: bad syntax"


class TestCliSarif:
    def test_findings_exit_one_with_parseable_log(self, bad_file,
                                                  capsys):
        assert main(["--format", "sarif", bad_file]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        rule_ids = {r["ruleId"] for r in log["runs"][0]["results"]}
        assert "det-wallclock" in rule_ids

    def test_clean_tree_exits_zero_with_empty_results(self, tmp_path,
                                                      capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["--format", "sarif", str(tmp_path)]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"] == []
        # descriptors are emitted even when nothing fires
        assert log["runs"][0]["tool"]["driver"]["rules"]

    def test_parse_error_exits_two_and_is_reported(self, tmp_path,
                                                   capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        assert main(["--format", "sarif", str(tmp_path)]) == 2
        log = json.loads(capsys.readouterr().out)
        inv = log["runs"][0]["invocations"][0]
        assert inv["executionSuccessful"] is False
        assert "broken.py" in \
            inv["toolExecutionNotifications"][0]["message"]["text"]
