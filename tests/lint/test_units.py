"""Physical-unit rules: watts/joules/hertz/seconds naming discipline."""

import textwrap

from repro.lint import lint_source
from repro.lint.rules.units import classify_name, units_of


def _ids(source: str) -> list[str]:
    return [f.rule for f in lint_source(textwrap.dedent(source))]


class TestVocabulary:
    def test_suffixes(self):
        assert classify_name("cap_w") == "watts"
        assert classify_name("pkg_j") == "joules"
        assert classify_name("uncore_hz") == "hertz"
        assert classify_name("window_s") == "seconds"

    def test_words(self):
        assert classify_name("power") == "watts"
        assert classify_name("pkg_energy") == "joules"
        assert classify_name("frequency") == "hertz"
        assert classify_name("control_interval") == "seconds"

    def test_bare_single_letters_are_loop_variables(self):
        # `for w in req.windows` / `j` as an index must not classify.
        assert classify_name("w") is None
        assert classify_name("j") is None
        assert classify_name("s") is None

    def test_conflicting_name(self):
        assert units_of("energy_w") == {"joules", "watts"}


class TestMixFires:
    def test_watts_plus_joules_fires(self):
        assert "units-mix" in _ids("""
            def total(power, pkg_energy):
                return power + pkg_energy
        """)

    def test_seconds_minus_hertz_fires(self):
        assert "units-mix" in _ids("""
            def drift(elapsed, frequency):
                return elapsed - frequency
        """)

    def test_comparison_fires(self):
        assert "units-mix" in _ids("""
            def over(limit_w, pkg_joules):
                return pkg_joules > limit_w
        """)

    def test_augmented_assignment_fires(self):
        assert "units-mix" in _ids("""
            def accrue(self, sample_watts):
                self.pkg_energy += sample_watts
        """)

    def test_attribute_operands_fire(self):
        assert "units-mix" in _ids("""
            def headroom(node, firmware):
                return node.frequency - firmware.limit_w
        """)


class TestMixStaysQuiet:
    def test_conversion_by_multiplication_is_legal(self):
        # watts * seconds -> joules: the accrual path in SimulatedNode.
        assert _ids("""
            def accrue(self, watts, dt):
                self.pkg_energy += watts * dt
        """) == []

    def test_same_unit_arithmetic_is_legal(self):
        assert _ids("""
            def total(pkg_energy, dram_energy):
                return pkg_energy + dram_energy
        """) == []

    def test_unclassified_names_are_left_alone(self):
        assert _ids("""
            def mix(a, b):
                return a + b
        """) == []

    def test_unclassified_side_is_left_alone(self):
        assert _ids("""
            def step(power, x):
                return power - x
        """) == []

    def test_min_max_propagate_units(self):
        assert _ids("""
            def clamp(power, tdp):
                return min(power, tdp)
        """) == []

    def test_suppression_silences_the_line(self):
        assert _ids("""
            def total(power, pkg_energy):
                return power + pkg_energy  # repro-lint: disable=units-mix
        """) == []


class TestSuffixRule:
    def test_conflicting_suffix_fires(self):
        assert "units-suffix" in _ids("""
            def f(cfg):
                energy_w = cfg.tdp
                return energy_w
        """)

    def test_conflicting_parameter_fires(self):
        assert "units-suffix" in _ids("""
            def f(power_j):
                return power_j
        """)

    def test_single_unit_names_are_quiet(self):
        assert _ids("""
            def f(cfg):
                cap_w = cfg.tdp
                pkg_j = 0.0
                return cap_w, pkg_j
        """) == []
