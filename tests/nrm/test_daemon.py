"""Integration tests for the power-policy daemon."""

import pytest

from repro.exceptions import ConfigurationError
from repro.hardware import SimulatedNode
from repro.hardware.msr import MSRDevice
from repro.hardware.msr_safe import MSRSafe
from repro.hardware.rapl import RaplFirmware
from repro.libmsr import LibMSR
from repro.nrm.daemon import PowerPolicyDaemon
from repro.nrm.schemes import (
    FixedCapSchedule,
    LinearDecreaseSchedule,
    StepSchedule,
    UncappedSchedule,
)
from repro.runtime.engine import Engine, Work


def make_stack():
    node = SimulatedNode()
    engine = Engine(node)
    fw = RaplFirmware(node, engine)
    lib = LibMSR(MSRSafe(MSRDevice(node, fw)), node.clock)
    return node, engine, fw, lib


def spawn_load(engine, n=24):
    def body():
        while True:
            yield Work(cycles=0.33e9)

    for c in range(n):
        engine.spawn(body(), core_id=c)


class TestDaemon:
    def test_fixed_schedule_programs_firmware(self):
        node, engine, fw, lib = make_stack()
        PowerPolicyDaemon(engine, lib, FixedCapSchedule(95.0))
        assert fw.limit == pytest.approx(95.0)
        assert fw.enabled

    def test_uncapped_schedule_disables_capping(self):
        node, engine, fw, lib = make_stack()
        fw.set_limit(60.0)
        PowerPolicyDaemon(engine, lib, UncappedSchedule())
        assert not fw.enabled

    def test_records_power_series_at_one_hz(self):
        node, engine, fw, lib = make_stack()
        daemon = PowerPolicyDaemon(engine, lib, UncappedSchedule())
        spawn_load(engine)
        engine.run(until=5.0)
        assert len(daemon.power_series) == 5
        assert daemon.power_series.mean() > 50.0

    def test_cap_series_tracks_schedule(self):
        node, engine, fw, lib = make_stack()
        schedule = LinearDecreaseSchedule(high=150.0, low=80.0, rate=10.0)
        daemon = PowerPolicyDaemon(engine, lib, schedule)
        spawn_load(engine)
        engine.run(until=8.0)
        caps = daemon.cap_series.values
        assert caps[0] == pytest.approx(150.0)
        assert caps[-1] < caps[0]

    def test_step_schedule_reprograms_limit(self):
        node, engine, fw, lib = make_stack()
        schedule = StepSchedule(low=80.0, high=None, high_duration=3.0,
                                low_duration=3.0)
        PowerPolicyDaemon(engine, lib, schedule)
        spawn_load(engine)
        engine.run(until=2.5)
        assert not fw.enabled            # uncapped half-period
        engine.run(until=4.0)
        assert fw.enabled and fw.limit == pytest.approx(80.0)

    def test_power_respects_applied_cap(self):
        node, engine, fw, lib = make_stack()
        daemon = PowerPolicyDaemon(engine, lib, FixedCapSchedule(90.0))
        spawn_load(engine)
        engine.run(until=6.0)
        settled = daemon.power_series.window(3.0, 6.1)
        assert settled.mean() <= 90.0 * 1.05

    def test_stop(self):
        node, engine, fw, lib = make_stack()
        daemon = PowerPolicyDaemon(engine, lib, UncappedSchedule())
        daemon.stop()
        spawn_load(engine, n=1)
        engine.run(until=3.0)
        assert len(daemon.power_series) == 0

    def test_rejects_bad_interval(self):
        node, engine, fw, lib = make_stack()
        with pytest.raises(ConfigurationError):
            PowerPolicyDaemon(engine, lib, UncappedSchedule(), interval=0.0)
