"""Tests for online beta estimation by frequency dithering."""

import pytest

pytestmark = pytest.mark.slow

from repro.apps import build
from repro.exceptions import ConfigurationError
from repro.experiments.table6 import APP_SIZING, PAPER
from repro.hardware import SimulatedNode
from repro.hardware.rapl import RaplFirmware
from repro.nrm.estimator import OnlineBetaEstimator
from repro.runtime.engine import Engine
from repro.telemetry import MessageBus, ProgressMonitor


def estimate(app_name, duration=22.0, **est_kwargs):
    node = SimulatedNode()
    engine = Engine(node)
    RaplFirmware(node, engine)
    bus = MessageBus(node.clock)
    pub = bus.pub_socket()
    engine.on_publish(lambda t, topic, v: pub.send(topic, v))
    sizing = {k: 1_000_000 if v else v
              for k, v in APP_SIZING[app_name].items()}
    app = build(app_name, seed=1, **sizing)
    monitor = ProgressMonitor(engine, bus.sub_socket(app.topic))
    estimator = OnlineBetaEstimator(engine, node, monitor, **est_kwargs)
    app.launch(engine)
    engine.run(until=duration)
    return node, estimator


class TestValidation:
    def _base(self):
        node = SimulatedNode()
        engine = Engine(node)
        bus = MessageBus(node.clock)
        monitor = ProgressMonitor(engine, bus.sub_socket("p"))
        return engine, node, monitor

    def test_rejects_dwell_below_settle(self):
        engine, node, monitor = self._base()
        with pytest.raises(ConfigurationError):
            OnlineBetaEstimator(engine, node, monitor, dwell=1.0,
                                settle=2.0)

    def test_rejects_inverted_frequencies(self):
        engine, node, monitor = self._base()
        with pytest.raises(ConfigurationError):
            OnlineBetaEstimator(engine, node, monitor, f_high=1.6e9,
                                f_low=3.3e9)

    def test_silent_application_raises(self):
        engine, node, monitor = self._base()
        OnlineBetaEstimator(engine, node, monitor)
        with pytest.raises(ConfigurationError):
            engine.run(until=20.0)


class TestEstimates:
    @pytest.mark.parametrize("app,expected", [
        ("lammps", PAPER["lammps"][0]),
        ("stream", PAPER["stream"][0]),
        ("qmcpack", PAPER["qmcpack"][0]),
    ])
    def test_matches_offline_characterization(self, app, expected):
        _, est = estimate(app)
        assert est.done
        assert est.beta == pytest.approx(expected, abs=0.06)

    def test_governor_restored_after_estimate(self):
        node, est = estimate("lammps")
        assert est.done
        assert node.freq_limit == node.cfg.f_turbo

    def test_callback_invoked(self):
        seen = []
        node = SimulatedNode()
        engine = Engine(node)
        RaplFirmware(node, engine)
        bus = MessageBus(node.clock)
        pub = bus.pub_socket()
        engine.on_publish(lambda t, topic, v: pub.send(topic, v))
        app = build("lammps", n_steps=1_000_000, seed=1)
        monitor = ProgressMonitor(engine, bus.sub_socket(app.topic))
        OnlineBetaEstimator(engine, node, monitor, on_complete=seen.append)
        app.launch(engine)
        engine.run(until=20.0)
        assert len(seen) == 1
        assert 0.9 < seen[0] <= 1.0
