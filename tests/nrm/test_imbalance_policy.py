"""Tests for the per-core DDCM imbalance-energy policy (extension)."""

import pytest

pytestmark = pytest.mark.slow

from repro.apps import build
from repro.exceptions import ConfigurationError
from repro.hardware import SimulatedNode
from repro.hardware.rapl import RaplFirmware
from repro.nrm import ImbalanceEnergyPolicy
from repro.runtime.engine import Engine
from repro.telemetry import JobProgressReducer, MessageBus, ProgressMonitor

N_RANKS = 8
SKEW = {w: 1.0 + 0.08 * w for w in range(N_RANKS)}


def run_skewed(policy_on: bool, duration: float = 40.0):
    node = SimulatedNode()
    engine = Engine(node)
    RaplFirmware(node, engine)
    bus = MessageBus(node.clock)
    pub = bus.pub_socket()
    engine.on_publish(lambda t, topic, v: pub.send(topic, v))
    app = build("lammps", n_steps=1_000_000, n_workers=N_RANKS, seed=3)
    app.per_rank_progress = True
    app.rank_work_scale = SKEW
    reducer = JobProgressReducer(engine, bus, app.rank_topic_prefix, N_RANKS)
    monitor = ProgressMonitor(engine, bus.sub_socket(app.topic))
    policy = (ImbalanceEnergyPolicy(engine, node, reducer)
              if policy_on else None)
    app.launch(engine)
    engine.run(until=duration)
    rate = monitor.series.window(10.0, duration + 0.1).mean()
    return node, rate, policy


class TestValidation:
    def _base(self):
        node = SimulatedNode()
        engine = Engine(node)
        bus = MessageBus(node.clock)
        reducer = JobProgressReducer(engine, bus, "p", 2)
        return engine, node, reducer

    def test_rejects_bad_interval(self):
        engine, node, reducer = self._base()
        with pytest.raises(ConfigurationError):
            ImbalanceEnergyPolicy(engine, node, reducer, interval=0.0)

    def test_rejects_bad_min_duty(self):
        engine, node, reducer = self._base()
        with pytest.raises(ConfigurationError):
            ImbalanceEnergyPolicy(engine, node, reducer, min_duty=0.0)

    def test_rejects_negative_slack(self):
        engine, node, reducer = self._base()
        with pytest.raises(ConfigurationError):
            ImbalanceEnergyPolicy(engine, node, reducer, slack=-0.1)


class TestBehaviour:
    @pytest.fixture(scope="class")
    def baseline(self):
        return run_skewed(False)

    @pytest.fixture(scope="class")
    def managed(self):
        return run_skewed(True)

    def test_modulates_fast_ranks_only(self, managed):
        node, _, _ = managed
        duties = [node.cores[c].duty for c in range(N_RANKS)]
        # the least-loaded rank is modulated hardest
        assert duties[0] < 1.0
        # the critical (most-loaded) rank is never modulated
        assert duties[N_RANKS - 1] == 1.0
        # duty ordering follows the work-share ordering
        assert duties == sorted(duties)

    def test_saves_energy(self, baseline, managed):
        node_b, _, _ = baseline
        node_m, _, _ = managed
        assert node_m.pkg_energy < 0.98 * node_b.pkg_energy

    def test_progress_preserved(self, baseline, managed):
        _, rate_b, _ = baseline
        _, rate_m, _ = managed
        assert rate_m == pytest.approx(rate_b, rel=0.01)

    def test_stop_restores_full_duty(self, managed):
        node, _, policy = managed
        policy.stop()
        assert all(node.cores[c].duty == 1.0 for c in range(N_RANKS))

    def test_balanced_app_left_alone(self):
        node = SimulatedNode()
        engine = Engine(node)
        RaplFirmware(node, engine)
        bus = MessageBus(node.clock)
        pub = bus.pub_socket()
        engine.on_publish(lambda t, topic, v: pub.send(topic, v))
        app = build("lammps", n_steps=1_000_000, n_workers=4, seed=3)
        app.per_rank_progress = True   # no skew
        reducer = JobProgressReducer(engine, bus, app.rank_topic_prefix, 4)
        ImbalanceEnergyPolicy(engine, node, reducer)
        app.launch(engine)
        engine.run(until=15.0)
        assert all(node.cores[c].duty == 1.0 for c in range(4))
