"""Tests for the phase-aware capping policy (extension)."""

import pytest

pytestmark = pytest.mark.slow

from repro.apps import build
from repro.exceptions import ConfigurationError
from repro.hardware import SimulatedNode
from repro.hardware.msr import MSRDevice
from repro.hardware.msr_safe import MSRSafe
from repro.hardware.rapl import RaplFirmware
from repro.libmsr import LibMSR
from repro.nrm import PhaseAwareCapPolicy
from repro.runtime.engine import Engine
from repro.telemetry import MessageBus, ProgressMonitor


def make_stack():
    node = SimulatedNode()
    engine = Engine(node)
    fw = RaplFirmware(node, engine)
    lib = LibMSR(MSRSafe(MSRDevice(node, fw)), node.clock)
    bus = MessageBus(node.clock)
    pub = bus.pub_socket()
    engine.on_publish(lambda t, topic, v: pub.send(topic, v))
    return node, engine, fw, lib, bus


def run_qmcpack(policy_kwargs=None, duration=70.0):
    node, engine, fw, lib, bus = make_stack()
    app = build("qmcpack", vmc1_blocks=500, vmc2_blocks=400,
                dmc_blocks=1_000_000, seed=2)
    monitor = ProgressMonitor(engine, bus.sub_socket(app.topic))
    policy = PhaseAwareCapPolicy(engine, lib, monitor, beta=0.84,
                                 **(policy_kwargs or {}))
    app.launch(engine)
    engine.run(until=duration)
    return node, monitor, policy


def run_uncapped_qmcpack(duration=70.0):
    node, engine, fw, lib, bus = make_stack()
    app = build("qmcpack", vmc1_blocks=500, vmc2_blocks=400,
                dmc_blocks=1_000_000, seed=2)
    monitor = ProgressMonitor(engine, bus.sub_socket(app.topic))
    app.launch(engine)
    engine.run(until=duration)
    return node, monitor


class TestValidation:
    def _base(self):
        node, engine, fw, lib, bus = make_stack()
        monitor = ProgressMonitor(engine, bus.sub_socket("p"))
        return engine, lib, monitor

    def test_rejects_bad_target(self):
        engine, lib, monitor = self._base()
        with pytest.raises(ConfigurationError):
            PhaseAwareCapPolicy(engine, lib, monitor, beta=0.8,
                                target_fraction=1.5)

    def test_rejects_bad_beta(self):
        engine, lib, monitor = self._base()
        with pytest.raises(ConfigurationError):
            PhaseAwareCapPolicy(engine, lib, monitor, beta=1.5)

    def test_rejects_bad_threshold(self):
        engine, lib, monitor = self._base()
        with pytest.raises(ConfigurationError):
            PhaseAwareCapPolicy(engine, lib, monitor, beta=0.8,
                                phase_threshold=0.0)

    def test_rejects_bad_persistence(self):
        engine, lib, monitor = self._base()
        with pytest.raises(ConfigurationError):
            PhaseAwareCapPolicy(engine, lib, monitor, beta=0.8,
                                persistence=0)


class TestBehaviour:
    @pytest.fixture(scope="class")
    def capped(self):
        return run_qmcpack()

    @pytest.fixture(scope="class")
    def uncapped(self):
        return run_uncapped_qmcpack()

    def test_adapts_to_multiple_phases(self, capped):
        _, _, policy = capped
        assert policy.n_phases_seen >= 2
        # the learned phase rates reflect the real phase structure
        assert policy.phase_rates[0] > policy.phase_rates[-1]

    def test_caps_applied_below_tdp(self, capped):
        node, _, policy = capped
        assert all(c < node.cfg.tdp for c in policy.phase_caps)

    def test_saves_energy_versus_uncapped(self, capped, uncapped):
        node_c, _, _ = capped
        node_u, _ = uncapped
        assert node_c.pkg_energy < 0.85 * node_u.pkg_energy

    def test_holds_progress_floor(self, capped, uncapped):
        _, mon_c, _ = capped
        _, mon_u = uncapped
        total_c = sum(mon_c.series.values)
        total_u = sum(mon_u.series.values)
        # target 85%, with measurement/transition slack
        assert total_c >= 0.82 * total_u

    def test_cap_series_shows_measure_and_cap_states(self, capped):
        node, _, policy = capped
        caps = policy.cap_series.values
        assert caps.max() == pytest.approx(node.cfg.tdp)  # measuring
        assert caps.min() < node.cfg.tdp                  # capped

    def test_stop(self):
        node, engine, fw, lib, bus = make_stack()
        monitor = ProgressMonitor(engine, bus.sub_socket("p"))
        policy = PhaseAwareCapPolicy(engine, lib, monitor, beta=0.8)
        policy.stop()
        engine.run(until=3.0)
        assert len(policy.cap_series) == 0
