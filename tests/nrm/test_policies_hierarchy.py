"""Tests for dynamic policies and the power-budget hierarchy."""

import pytest

from repro.core.model import PowerCapModel
from repro.exceptions import ConfigurationError
from repro.hardware import SimulatedNode
from repro.hardware.msr import MSRDevice
from repro.hardware.msr_safe import MSRSafe
from repro.hardware.rapl import RaplFirmware
from repro.libmsr import LibMSR
from repro.nrm.hierarchy import Job, SystemPowerManager
from repro.nrm.policies import BudgetTrackingPolicy, ProgressFloorPolicy
from repro.runtime.engine import Engine, Publish, Work
from repro.telemetry import MessageBus, ProgressMonitor


def make_stack():
    node = SimulatedNode()
    engine = Engine(node)
    fw = RaplFirmware(node, engine)
    lib = LibMSR(MSRSafe(MSRDevice(node, fw)), node.clock)
    return node, engine, fw, lib


class TestBudgetTracking:
    def test_budget_applied_on_next_tick(self):
        node, engine, fw, lib = make_stack()
        policy = BudgetTrackingPolicy(engine, lib)
        policy.receive_budget(85.0)

        def body():
            yield Work(cycles=10e9)

        engine.spawn(body(), core_id=0)
        engine.run(until=2.0)
        assert fw.enabled and fw.limit == pytest.approx(85.0)

    def test_none_budget_uncaps(self):
        node, engine, fw, lib = make_stack()
        policy = BudgetTrackingPolicy(engine, lib)
        policy.receive_budget(85.0)
        engine.run(until=1.5)
        policy.receive_budget(None)
        engine.run(until=3.0)
        assert not fw.enabled

    def test_rejects_nonpositive_budget(self):
        node, engine, fw, lib = make_stack()
        policy = BudgetTrackingPolicy(engine, lib)
        with pytest.raises(ConfigurationError):
            policy.receive_budget(0.0)


class TestProgressFloor:
    def _run(self, target_rate):
        node, engine, fw, lib = make_stack()
        bus = MessageBus(node.clock)
        pub = bus.pub_socket()
        engine.on_publish(lambda t, topic, v: pub.send(topic, v))
        monitor = ProgressMonitor(engine, bus.sub_socket("progress"))
        model = PowerCapModel(beta=1.0, r_max=10.0, p_coremax=150.0)
        policy = ProgressFloorPolicy(engine, lib, monitor, model,
                                     target_rate, min_cap=50.0)

        def body():
            # 10 iterations/s at nominal frequency
            while True:
                yield Work(cycles=0.33e9)
                yield Publish("progress", 1.0)

        for c in range(24):
            engine.spawn(body(), core_id=c)
        engine.run(until=20.0)
        return node, fw, monitor, policy

    def test_holds_target_rate(self):
        node, fw, monitor, policy = self._run(target_rate=8.0)
        settled = monitor.series.window(10.0, 20.1)
        assert settled.mean() >= 8.0 * 0.93

    def test_saves_power_versus_uncapped(self):
        node, fw, monitor, policy = self._run(target_rate=7.0)
        # uncapped draw is ~155 W; holding 70% progress must cap well below
        assert policy.cap < 140.0

    def test_validation(self):
        node, engine, fw, lib = make_stack()
        bus = MessageBus(node.clock)
        monitor = ProgressMonitor(engine, bus.sub_socket("p"))
        model = PowerCapModel(beta=1.0, r_max=10.0, p_coremax=150.0)
        with pytest.raises(ConfigurationError):
            ProgressFloorPolicy(engine, lib, monitor, model, 0.0)
        with pytest.raises(ConfigurationError):
            ProgressFloorPolicy(engine, lib, monitor, model, 5.0, slack=2.0)


class TestHierarchy:
    def test_single_job_gets_everything(self):
        mgr = SystemPowerManager(1000.0)
        budgets = mgr.submit(Job("a", n_nodes=4))
        assert budgets["a"] == pytest.approx(250.0)

    def test_weighted_fair_share(self):
        mgr = SystemPowerManager(1200.0)
        mgr.submit(Job("lo", n_nodes=4, priority=1.0))
        budgets = mgr.submit(Job("hi", n_nodes=4, priority=2.0))
        # weights 4 vs 8 -> 400 W vs 800 W -> 100 vs 200 per node
        assert budgets["lo"] == pytest.approx(100.0)
        assert budgets["hi"] == pytest.approx(200.0)

    def test_high_priority_arrival_shrinks_low_priority(self):
        """The paper's Section II scenario."""
        mgr = SystemPowerManager(1000.0)
        received = []
        job = Job("lo", n_nodes=2,
                  node_sinks=[received.append, received.append])
        mgr.submit(job)
        before = received[-1]
        mgr.submit(Job("hi", n_nodes=6, priority=4.0))
        after = received[-1]
        assert after < before

    def test_floor_is_honoured(self):
        mgr = SystemPowerManager(500.0, min_node_budget=50.0)
        mgr.submit(Job("a", n_nodes=4, priority=1.0))
        budgets = mgr.submit(Job("b", n_nodes=4, priority=100.0))
        assert budgets["a"] == pytest.approx(50.0)
        assert budgets["b"] == pytest.approx((500.0 - 200.0) / 4.0)

    def test_admission_fails_when_floors_unaffordable(self):
        mgr = SystemPowerManager(200.0, min_node_budget=50.0)
        mgr.submit(Job("a", n_nodes=3))
        with pytest.raises(ConfigurationError):
            mgr.submit(Job("b", n_nodes=2))

    def test_completion_returns_power(self):
        mgr = SystemPowerManager(800.0)
        mgr.submit(Job("a", n_nodes=4))
        mgr.submit(Job("b", n_nodes=4))
        budgets = mgr.complete("b")
        assert budgets["a"] == pytest.approx(200.0)

    def test_duplicate_submit_rejected(self):
        mgr = SystemPowerManager(800.0)
        mgr.submit(Job("a", n_nodes=1))
        with pytest.raises(ConfigurationError):
            mgr.submit(Job("a", n_nodes=1))

    def test_unknown_completion_rejected(self):
        mgr = SystemPowerManager(800.0)
        with pytest.raises(ConfigurationError):
            mgr.complete("ghost")

    def test_budget_reduction_redistributes(self):
        mgr = SystemPowerManager(1000.0)
        mgr.submit(Job("a", n_nodes=4))
        budgets = mgr.set_machine_budget(600.0)
        assert budgets["a"] == pytest.approx(150.0)

    def test_budget_reduction_below_floors_rejected(self):
        mgr = SystemPowerManager(1000.0, min_node_budget=100.0)
        mgr.submit(Job("a", n_nodes=8))
        with pytest.raises(ConfigurationError):
            mgr.set_machine_budget(500.0)
