"""Unit and property tests for the capping schedules."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.nrm.schemes import (
    FixedCapSchedule,
    JaggedEdgeSchedule,
    LinearDecreaseSchedule,
    StepSchedule,
    UncappedSchedule,
)


class TestLinearDecrease:
    def test_uncapped_before_start(self):
        s = LinearDecreaseSchedule(high=150.0, low=60.0, rate=3.0, start=5.0)
        assert s.cap_at(4.9) is None

    def test_descends_linearly(self):
        s = LinearDecreaseSchedule(high=150.0, low=60.0, rate=3.0)
        assert s.cap_at(0.0) == pytest.approx(150.0)
        assert s.cap_at(10.0) == pytest.approx(120.0)

    def test_holds_at_minimum(self):
        s = LinearDecreaseSchedule(high=150.0, low=60.0, rate=3.0)
        assert s.cap_at(1000.0) == pytest.approx(60.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinearDecreaseSchedule(high=60.0, low=70.0, rate=1.0)
        with pytest.raises(ConfigurationError):
            LinearDecreaseSchedule(high=100.0, low=60.0, rate=0.0)

    @given(st.floats(min_value=0.0, max_value=1e4))
    def test_always_within_band(self, t):
        s = LinearDecreaseSchedule(high=150.0, low=60.0, rate=2.0)
        cap = s.cap_at(t)
        assert 60.0 <= cap <= 150.0


class TestStep:
    def test_alternation_with_uncapped_high(self):
        s = StepSchedule(low=70.0, high=None, high_duration=10.0,
                         low_duration=5.0)
        assert s.cap_at(0.0) is None
        assert s.cap_at(9.99) is None
        assert s.cap_at(10.0) == 70.0
        assert s.cap_at(14.99) == 70.0
        assert s.cap_at(15.0) is None  # next period

    def test_alternation_with_high_value(self):
        s = StepSchedule(low=70.0, high=140.0, high_duration=10.0,
                         low_duration=10.0)
        assert s.cap_at(5.0) == 140.0
        assert s.cap_at(15.0) == 70.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StepSchedule(low=0.0)
        with pytest.raises(ConfigurationError):
            StepSchedule(low=100.0, high=90.0)
        with pytest.raises(ConfigurationError):
            StepSchedule(low=70.0, high_duration=0.0)

    @given(st.floats(min_value=0.0, max_value=1e4))
    def test_periodicity(self, t):
        s = StepSchedule(low=70.0, high=140.0, high_duration=7.0,
                         low_duration=3.0)
        assert s.cap_at(t) == s.cap_at(t + 10.0)


class TestJaggedEdge:
    def test_starts_high_ends_low(self):
        s = JaggedEdgeSchedule(high=150.0, low=60.0, descent=30.0)
        assert s.cap_at(0.0) == pytest.approx(150.0)
        assert s.cap_at(29.999) == pytest.approx(60.0, rel=1e-3)

    def test_snaps_back(self):
        s = JaggedEdgeSchedule(high=150.0, low=60.0, descent=30.0)
        assert s.cap_at(30.0) == pytest.approx(150.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JaggedEdgeSchedule(high=60.0, low=70.0)
        with pytest.raises(ConfigurationError):
            JaggedEdgeSchedule(high=150.0, low=60.0, descent=0.0)

    @given(st.floats(min_value=0.0, max_value=1e4))
    def test_band(self, t):
        s = JaggedEdgeSchedule(high=150.0, low=60.0, descent=25.0)
        assert 60.0 <= s.cap_at(t) <= 150.0


class TestFixedAndUncapped:
    def test_fixed_after_start(self):
        s = FixedCapSchedule(90.0, start=10.0)
        assert s.cap_at(9.9) is None
        assert s.cap_at(10.0) == 90.0

    def test_fixed_validation(self):
        with pytest.raises(ConfigurationError):
            FixedCapSchedule(0.0)
        with pytest.raises(ConfigurationError):
            FixedCapSchedule(10.0, start=-1.0)

    def test_uncapped_always_none(self):
        s = UncappedSchedule()
        assert s.cap_at(0.0) is None
        assert s.cap_at(1e6) is None
