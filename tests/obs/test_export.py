"""Export tests: Chrome trace-event conversion and format round trips."""

import json

import pytest

from repro.obs.export import (
    load_trace,
    to_chrome,
    write_chrome,
    write_jsonl,
    write_trace,
)
from repro.obs.trace import Tracer


def recorded_events():
    ticks = iter([1000, 4000, 2_000_000])
    tracer = Tracer(clock=lambda: next(ticks))
    with tracer.span("work", n=2):
        pass
    tracer.instant("hit", index=0)
    return tracer.events


class TestChromeFormat:
    def test_to_chrome_converts_ns_to_us(self):
        doc = to_chrome(recorded_events())
        span, instant = doc["traceEvents"]
        assert span["ts"] == 1.0 and span["dur"] == 3.0
        assert instant["ts"] == 2000.0
        assert doc["displayTimeUnit"] == "ms"

    def test_to_chrome_does_not_mutate_the_input(self):
        events = recorded_events()
        to_chrome(events)
        assert events[0]["ts"] == 1000  # still nanoseconds

    def test_written_file_is_valid_trace_event_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome(path, recorded_events())
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        phases = {ev["ph"] for ev in doc["traceEvents"]}
        assert phases == {"X", "i"}
        for ev in doc["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(ev)


class TestRoundTrips:
    def test_chrome_round_trip_restores_nanoseconds(self, tmp_path):
        events = recorded_events()
        path = tmp_path / "trace.json"
        assert write_trace(path, events) == "chrome"
        loaded = load_trace(path)
        assert [ev["ts"] for ev in loaded] == [ev["ts"] for ev in events]
        assert loaded[0]["dur"] == events[0]["dur"]

    def test_jsonl_round_trip_is_exact(self, tmp_path):
        events = recorded_events()
        path = tmp_path / "trace.jsonl"
        assert write_trace(path, events) == "jsonl"
        assert load_trace(path) == events

    def test_single_event_jsonl_is_not_mistaken_for_chrome(self, tmp_path):
        # A one-line JSONL file is itself valid JSON; the sniffer must
        # still treat it as JSONL because it has no "traceEvents" key.
        path = tmp_path / "one.jsonl"
        write_jsonl(path, recorded_events()[:1])
        [ev] = load_trace(path)
        assert ev["ts"] == 1000

    def test_bare_event_array_loads_as_chrome(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(to_chrome(recorded_events())
                                   ["traceEvents"]))
        loaded = load_trace(path)
        assert loaded[0]["ts"] == 1000

    def test_empty_file_loads_as_no_events(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert load_trace(path) == []

    def test_blank_jsonl_lines_are_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"ph": "i", "name": "a", "ts": 1}\n\n'
                        '{"ph": "i", "name": "b", "ts": 2}\n')
        assert [ev["name"] for ev in load_trace(path)] == ["a", "b"]

    def test_corrupt_line_reports_its_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ph": "i", "name": "a", "ts": 1}\nnot json{\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            load_trace(path)
