"""Metrics registry unit tests: instruments, labels, reports, nulls."""

import json

import pytest

from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.snapshot() == 3.5

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(1.0)
        g.set(0.25)
        assert g.snapshot() == 0.25

    def test_histogram_summary_stats(self):
        h = Histogram()
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["total"] == 6.0
        assert snap["mean"] == 2.0
        assert snap["min"] == 1.0 and snap["max"] == 3.0

    def test_empty_histogram_snapshot_is_zeroed(self):
        assert Histogram().snapshot() == {
            "count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}


class TestRegistry:
    def test_same_name_and_labels_share_an_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("runs", outcome="cached")
        b = reg.counter("runs", outcome="cached")
        assert a is b
        a.inc()
        assert b.snapshot() == 1

    def test_label_order_does_not_split_the_series(self):
        reg = MetricsRegistry()
        a = reg.counter("bytes", direction="down", shard=1)
        b = reg.counter("bytes", shard=1, direction="down")
        assert a is b

    def test_different_labels_are_different_series(self):
        reg = MetricsRegistry()
        assert reg.counter("runs", outcome="cached") is not \
            reg.counter("runs", outcome="computed")
        assert len(reg) == 2

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_snapshot_is_sorted_plain_data(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a", node=1).set(0.5)
        snap = reg.snapshot()
        assert [rec["name"] for rec in snap] == ["a", "b"]
        assert snap[0] == {"name": "a", "labels": {"node": 1},
                           "kind": "gauge", "value": 0.5}

    def test_render_text_one_line_per_metric(self):
        reg = MetricsRegistry()
        reg.counter("epochs").inc(3)
        reg.counter("bytes", direction="down").inc(10)
        reg.histogram("lat").observe(2.0)
        text = reg.render_text()
        assert "epochs 3" in text
        assert "bytes{direction=down} 10" in text
        assert "lat count=1" in text

    def test_render_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("epochs").inc()
        doc = json.loads(reg.render_json())
        assert doc["metrics"][0]["name"] == "epochs"
        assert doc["metrics"][0]["value"] == 1


class TestNullMetrics:
    def test_factories_return_one_shared_noop(self):
        a = NULL_METRICS.counter("x", shard=1)
        b = NULL_METRICS.gauge("y")
        c = NULL_METRICS.histogram("z")
        assert a is b is c
        a.inc()
        a.inc(5)
        b.set(1.0)
        c.observe(2.0)  # all no-ops, nothing recorded

    def test_null_reports_are_empty(self):
        null = NullMetrics()
        assert null.snapshot() == []
        assert null.render_text() == ""
        assert json.loads(null.render_json()) == {"metrics": []}
        assert len(null) == 0
        assert null.enabled is False
