"""Golden parity: enabling observability never changes a simulated number.

The acceptance bar for the whole layer — traced runs must be
bit-identical (``==`` on floats, not approx) to untraced runs for the
cluster lockstep loop, the scheduler, and a figure-4 measurement, in
both serial and sharded execution.
"""

import pytest

from repro import obs
from repro.cluster import ClusterSimulation, UniformPowerPolicy
from repro.core.model import PowerCapModel
from repro.experiments import figure4
from repro.scheduler import (
    AppPowerProfile,
    Job,
    PowerAwareScheduler,
    PowerBook,
    SchedulerConfig,
)

pytestmark = pytest.mark.slow

LAMMPS_RATE = 8.96e5
LAMMPS_POWER = 65.0


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    yield
    obs.disable()


def run_cluster(shards):
    sim = ClusterSimulation(2, "lammps", UniformPowerPolicy(180.0),
                            app_kwargs={"n_workers": 4},
                            variability=(0.05, 0.08), seed=7,
                            shards=shards)
    try:
        sim.run(4.0, epoch=1.0)
        return {
            "times": list(sim.total_progress.times),
            "total_progress": list(sim.total_progress.values),
            "critical_path": list(sim.critical_path.values),
            "budget_history": list(sim.budget_history.values),
            "total_energy": sim.total_energy,
            "now": sim.now,
        }
    finally:
        sim.close()


def run_scheduler():
    book = PowerBook(n_workers=4)
    book.preload(AppPowerProfile(
        app_name="lammps", beta=1.0, mpo=3e-4, r_max=LAMMPS_RATE,
        p_uncapped=LAMMPS_POWER,
        model=PowerCapModel(beta=1.0, r_max=LAMMPS_RATE,
                            p_coremax=LAMMPS_POWER, alpha=2.0),
        fit_residual_rms=0.0, probe_caps=(50.0,),
    ))
    config = SchedulerConfig(n_slots=2, power_budget=120.0,
                             policy="backfill", min_cap=45.0,
                             cap_step=5.0, eco_margin=0.8, n_workers=4,
                             seed=1)
    scheduler = PowerAwareScheduler(config, book)
    for i, tol in enumerate((None, 0.2, 0.25)):
        scheduler.submit(Job(
            job_id=f"j{i}", app_name="lammps", n_nodes=1,
            work_units=2.0 * LAMMPS_RATE, max_slowdown=tol,
            app_kwargs={"n_steps": 1_000_000}))
    try:
        report = scheduler.run()
    finally:
        scheduler.close()
    return {
        "makespan": report.makespan,
        "total_energy": report.total_energy,
        "violations": report.violations,
        "power": list(report.power.values),
        "records": [(r.job.job_id, r.start_time, r.end_time, r.cap,
                     r.measured_slowdown) for r in report.records],
    }


def run_figure4_panel():
    panel = figure4.run_panel("stream", caps=(110.0, 70.0), repeats=1,
                              seed=2)
    return {
        "r_max": panel.r_max,
        "p_coremax": panel.p_coremax,
        "measured": [(m.p_cap, m.delta_mean, m.r_uncapped)
                     for m in panel.measurements],
        "predictions": list(panel.predictions),
        "mape": panel.errors.mape,
    }


def traced(fn, *args):
    obs.enable()
    try:
        result = fn(*args)
        events = len(obs.tracer())
    finally:
        obs.disable()
    return result, events


class TestGoldenParity:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_cluster_traced_equals_untraced(self, shards):
        untraced = run_cluster(shards)
        with_trace, events = traced(run_cluster, shards)
        assert events > 0  # the instrumentation did fire
        assert with_trace == untraced

    def test_scheduler_traced_equals_untraced(self):
        untraced = run_scheduler()
        with_trace, events = traced(run_scheduler)
        assert events > 0
        assert with_trace == untraced

    def test_figure4_traced_equals_untraced(self):
        untraced = run_figure4_panel()
        with_trace, events = traced(run_figure4_panel)
        assert events > 0
        assert with_trace == untraced

    def test_traced_sharded_run_emits_payload_instants(self):
        obs.enable()
        try:
            run_cluster(2)
            payloads = [ev for ev in obs.tracer().events
                        if ev["name"] == "shard.payload"]
            assert payloads, "sharded dispatch must record payload sizes"
            args = payloads[0]["args"]
            assert args["bytes_down"] > 0 and args["bytes_up"] > 0
        finally:
            obs.disable()
