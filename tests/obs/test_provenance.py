"""Provenance manifest tests."""

import json

from repro.obs.provenance import SCHEMA, build_manifest, write_manifest


class TestManifest:
    def test_required_sections_present(self):
        m = build_manifest(experiment="figure4", config={"seed": 3})
        assert m["schema"] == SCHEMA
        assert m["experiment"] == "figure4"
        assert m["config"] == {"seed": 3}
        assert m["versions"]["python"]
        assert m["versions"]["repro"]
        assert m["platform"]["system"]
        # ISO-8601 UTC timestamp, e.g. 2026-08-08T21:14:58+00:00
        assert m["created_at"].endswith("+00:00")

    def test_optional_sections_only_when_given(self):
        bare = build_manifest(experiment="x", config={})
        assert "cache" not in bare and "trace" not in bare
        full = build_manifest(
            experiment="x", config={}, wall_time_s=1.5,
            cache={"hits": 2, "misses": 1},
            trace={"path": "t.json"}, metrics="m.txt")
        assert full["wall_time_s"] == 1.5
        assert full["cache"] == {"hits": 2, "misses": 1}
        assert full["trace"] == {"path": "t.json"}
        assert full["metrics"] == "m.txt"

    def test_write_manifest_is_stable_json(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = build_manifest(experiment="x", config={"b": 1, "a": 2})
        write_manifest(path, manifest)
        doc = json.loads(path.read_text())
        assert doc == manifest
        # sorted keys make the file diffable across runs
        keys = list(json.loads(path.read_text()).keys())
        assert keys == sorted(keys)
