"""Session tests: the enable/disable switch and the accessor contract."""

import json

import pytest

from repro import obs
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    yield
    obs.disable()


class TestSwitch:
    def test_disabled_by_default_accessors_return_nulls(self):
        assert obs.enabled() is False
        assert obs.session() is None
        assert obs.tracer() is NULL_TRACER
        assert obs.metrics() is NULL_METRICS

    def test_enable_installs_live_objects(self):
        session = obs.enable()
        assert obs.enabled() is True
        assert obs.session() is session
        assert isinstance(obs.tracer(), Tracer)
        assert isinstance(obs.metrics(), MetricsRegistry)
        assert obs.tracer() is session.tracer

    def test_enable_is_idempotent(self):
        first = obs.enable()
        with obs.tracer().span("kept"):
            pass
        assert obs.enable() is first  # does not discard recorded events
        assert len(first.tracer) == 1

    def test_enable_accepts_a_custom_session(self):
        custom = obs.ObsSession(tracer=Tracer(category="bench"))
        assert obs.enable(custom) is custom
        assert obs.tracer().category == "bench"

    def test_disable_reverts_to_nulls(self):
        obs.enable()
        obs.disable()
        assert obs.tracer() is NULL_TRACER
        assert obs.metrics() is NULL_METRICS


class TestSessionOutputs:
    def test_write_trace_reports_path_format_and_count(self, tmp_path):
        session = obs.enable()
        with obs.tracer().span("a"):
            pass
        path = tmp_path / "run.json"
        info = session.write_trace(path)
        assert info == {"path": str(path), "format": "chrome", "events": 1}
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 1

    def test_write_metrics_json_and_text(self, tmp_path):
        session = obs.enable()
        obs.metrics().counter("epochs").inc(4)
        jpath = tmp_path / "m.json"
        tpath = tmp_path / "m.txt"
        session.write_metrics(jpath)
        session.write_metrics(tpath)
        assert json.loads(jpath.read_text())["metrics"][0]["value"] == 4
        assert "epochs 4" in tpath.read_text()


class TestDisabledOverhead:
    def test_disabled_instrumentation_allocates_no_events(self):
        # The smoke check for the "zero-cost when off" contract: a hot
        # loop over the disabled accessors touches only the two shared
        # singletons and records nothing.
        tracer = obs.tracer()
        metrics = obs.metrics()
        for i in range(10_000):
            with tracer.span("epoch", i=i):
                tracer.instant("tick", i=i)
                metrics.counter("epochs").inc()
        assert tracer is NULL_TRACER
        assert len(tracer) == 0
        assert obs.metrics().snapshot() == []
