"""Summarize aggregation + ``python -m repro.obs summarize`` CLI tests."""

import pytest

from repro.obs.__main__ import main
from repro.obs.export import write_trace
from repro.obs.summarize import (
    cache_totals,
    payload_totals,
    span_totals,
    summarize,
)
from repro.obs.trace import Tracer


def sample_trace():
    ticks = iter(range(0, 10_000_000, 250_000))
    tracer = Tracer(clock=lambda: next(ticks))
    with tracer.span("epoch"):
        tracer.instant("executor.cache_hit", index=0)
        tracer.instant("executor.cache_miss", index=1)
        tracer.instant("shard.payload", cmd="step", shard=0,
                       bytes_down=100, bytes_up=40)
        tracer.instant("shard.payload", cmd="step", shard=1,
                       bytes_down=120, bytes_up=60)
    with tracer.span("epoch"):
        tracer.instant("executor.cache_hit", index=2)
        tracer.instant("shard.payload", cmd="step", shard=0,
                       bytes_down=100, bytes_up=44)
    return tracer.events


class TestAggregation:
    def test_span_totals_count_and_durations(self):
        totals = span_totals(sample_trace())
        agg = totals["epoch"]
        assert agg["count"] == 2
        assert agg["total_ns"] == agg["mean_ns"] * 2
        assert agg["max_ns"] >= agg["mean_ns"]

    def test_cache_totals(self):
        assert cache_totals(sample_trace()) == (2, 1)

    def test_payload_totals_aggregate_per_shard(self):
        totals = payload_totals(sample_trace())
        assert totals[0] == {"bytes_down": 200, "bytes_up": 84,
                             "messages": 2}
        assert totals[1] == {"bytes_down": 120, "bytes_up": 60,
                             "messages": 1}

    def test_summarize_report_contents(self):
        report = summarize(sample_trace(), source="run.json")
        assert "Trace summary: run.json" in report
        assert "epoch" in report
        assert "2 hits / 1 misses (66.7% hit rate)" in report
        assert "shard 0: 200 B down / 84 B up over 2 dispatches" in report
        assert "total: 320 B down / 144 B up" in report

    def test_summarize_empty_trace(self):
        report = summarize([])
        assert "events: 0" in report
        assert "no cached executor activity" in report
        assert "none recorded" in report


class TestCli:
    @pytest.mark.parametrize("name", ["run.json", "run.jsonl"])
    def test_summarize_either_format(self, tmp_path, capsys, name):
        path = tmp_path / name
        write_trace(path, sample_trace())
        assert main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Trace summary" in out
        assert "2 hits / 1 misses" in out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["summarize", str(tmp_path / "nope.json")]) == 2
        assert "nope.json" in capsys.readouterr().err

    def test_corrupt_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("definitely not json\n")
        assert main(["summarize", str(path)]) == 2
        assert "bad.jsonl" in capsys.readouterr().err
