"""Tracer unit tests: span lifecycle, nesting, instants, null objects."""

from repro.obs.trace import (
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Tracer,
    _NULL_SPAN,
)


def fake_clock(ticks):
    it = iter(ticks)
    return lambda: next(it)


class TestSpans:
    def test_span_records_complete_event(self):
        tracer = Tracer(clock=fake_clock([100, 350]))
        with tracer.span("work", kind="unit"):
            pass
        [ev] = tracer.events
        assert ev["ph"] == "X"
        assert ev["name"] == "work"
        assert ev["cat"] == "repro"
        assert ev["ts"] == 100
        assert ev["dur"] == 250
        assert ev["pid"] == 0 and ev["tid"] == 0
        assert ev["args"] == {"kind": "unit"}

    def test_set_merges_args_mid_span(self):
        tracer = Tracer(clock=fake_clock([0, 1]))
        with tracer.span("work", a=1) as span:
            span.set(b=2)
        assert tracer.events[0]["args"] == {"a": 1, "b": 2}

    def test_nested_spans_close_inner_first(self):
        tracer = Tracer(clock=fake_clock([0, 10, 20, 30]))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [ev["name"] for ev in tracer.events]
        assert names == ["inner", "outer"]
        inner, outer = tracer.events
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_span_records_even_when_body_raises(self):
        tracer = Tracer(clock=fake_clock([0, 5]))
        try:
            with tracer.span("fails"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(tracer) == 1
        assert tracer.events[0]["name"] == "fails"

    def test_instant_event_shape(self):
        tracer = Tracer(clock=fake_clock([42]))
        tracer.instant("hit", index=3)
        [ev] = tracer.events
        assert ev["ph"] == "i"
        assert ev["ts"] == 42
        assert ev["s"] == "p"
        assert ev["args"] == {"index": 3}

    def test_now_ns_reads_the_clock(self):
        tracer = Tracer(clock=fake_clock([7]))
        assert tracer.now_ns() == 7

    def test_clear_and_len(self):
        tracer = Tracer(clock=fake_clock([0, 1, 2]))
        with tracer.span("a"):
            pass
        tracer.instant("b")
        assert len(tracer) == 2
        tracer.clear()
        assert len(tracer) == 0 and tracer.events == []

    def test_category_and_pid_are_configurable(self):
        tracer = Tracer(category="bench", pid=7, clock=fake_clock([0, 1]))
        with tracer.span("a"):
            pass
        assert tracer.events[0]["cat"] == "bench"
        assert tracer.events[0]["pid"] == 7


class TestNullObjects:
    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert Tracer(clock=fake_clock([])).enabled is True

    def test_null_span_is_one_shared_instance(self):
        # The zero-cost contract: the disabled path allocates nothing.
        a = NULL_TRACER.span("a", x=1)
        b = NULL_TRACER.span("b")
        assert a is b is _NULL_SPAN
        assert isinstance(a, NullSpan)

    def test_null_span_supports_the_span_protocol(self):
        with NULL_TRACER.span("a") as span:
            assert span.set(x=1) is span

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("a"):
            tracer.instant("b")
        assert len(tracer) == 0
        assert tracer.events == []
        assert tracer.now_ns() == 0
        tracer.clear()  # no-op, must not raise
