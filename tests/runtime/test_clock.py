"""Unit tests for the simulation clock."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import SchedulingError
from repro.runtime.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(12.5).now == 12.5

    def test_rejects_negative_start(self):
        with pytest.raises(SchedulingError):
            SimClock(-1.0)

    def test_rejects_nan_start(self):
        with pytest.raises(SchedulingError):
            SimClock(float("nan"))

    def test_advance_moves_forward(self):
        clk = SimClock()
        assert clk.advance(1.5) == 1.5
        assert clk.advance(0.5) == 2.0
        assert clk.now == 2.0

    def test_advance_zero_is_allowed(self):
        clk = SimClock(3.0)
        assert clk.advance(0.0) == 3.0

    def test_advance_rejects_negative(self):
        clk = SimClock()
        with pytest.raises(SchedulingError):
            clk.advance(-0.1)

    def test_advance_rejects_nan(self):
        clk = SimClock()
        with pytest.raises(SchedulingError):
            clk.advance(float("nan"))

    def test_advance_to_absolute(self):
        clk = SimClock(1.0)
        assert clk.advance_to(4.0) == 4.0
        assert clk.now == 4.0

    def test_advance_to_now_is_noop(self):
        clk = SimClock(2.0)
        assert clk.advance_to(2.0) == 2.0

    def test_advance_to_rejects_past(self):
        clk = SimClock(5.0)
        with pytest.raises(SchedulingError):
            clk.advance_to(4.999)


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), max_size=30))
def test_clock_is_monotonic_under_any_advances(dts):
    clk = SimClock()
    prev = clk.now
    for dt in dts:
        clk.advance(dt)
        assert clk.now >= prev
        prev = clk.now
    assert clk.now == pytest.approx(sum(dts), abs=1e-6)
