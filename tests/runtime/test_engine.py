"""Unit and property tests for the fluid discrete-event engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    ConfigurationError,
    SchedulingError,
    SimulationError,
)
from repro.hardware import SimulatedNode, skylake_config
from repro.runtime.engine import (
    Barrier,
    BarrierGroup,
    Engine,
    Publish,
    Sleep,
    Work,
)

F_NOM = 3.3e9


@pytest.fixture()
def node():
    return SimulatedNode()


@pytest.fixture()
def engine(node):
    return Engine(node)


def run_single(engine, *directives, core_id=0):
    def body():
        for d in directives:
            yield d

    engine.spawn(body(), core_id=core_id)
    return engine.run()


class TestDirectiveValidation:
    def test_work_rejects_negative_cycles(self):
        with pytest.raises(ConfigurationError):
            Work(cycles=-1.0)

    def test_work_rejects_negative_instructions(self):
        with pytest.raises(ConfigurationError):
            Work(cycles=1.0, instructions=-1.0)

    def test_work_default_instructions_equal_cycles(self):
        assert Work(cycles=5.0).ins == 5.0

    def test_work_explicit_instructions(self):
        assert Work(cycles=5.0, instructions=2.0).ins == 2.0

    def test_sleep_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Sleep(-0.5)

    def test_barrier_group_rejects_zero_members(self):
        with pytest.raises(ConfigurationError):
            BarrierGroup(0)


class TestPureCompute:
    def test_duration_is_cycles_over_frequency(self, engine, node):
        t = run_single(engine, Work(cycles=2 * F_NOM))
        assert t == pytest.approx(2.0)

    def test_two_sequential_work_items(self, engine):
        t = run_single(engine, Work(cycles=F_NOM), Work(cycles=F_NOM))
        assert t == pytest.approx(2.0)

    def test_lower_frequency_slows_down(self, node):
        node.set_frequency(1.65e9)  # snaps down to the 1.6 GHz ladder step
        engine = Engine(node)
        t = run_single(engine, Work(cycles=F_NOM))
        assert t == pytest.approx(F_NOM / 1.6e9)

    def test_duty_cycle_slows_down(self, node):
        node.set_duty(0.5)
        engine = Engine(node)
        t = run_single(engine, Work(cycles=F_NOM))
        assert t == pytest.approx(2.0)

    def test_empty_work_takes_no_time(self, engine):
        t = run_single(engine, Work(cycles=0.0), Work(cycles=F_NOM))
        assert t == pytest.approx(1.0)

    def test_counters_accrue_instructions(self, engine, node):
        run_single(engine, Work(cycles=1e9, instructions=2.5e9))
        snap = node.counters.snapshot(node.clock.now)
        assert snap.total("PAPI_TOT_INS") == pytest.approx(2.5e9)

    def test_counters_accrue_l3_misses(self, engine, node):
        run_single(engine, Work(cycles=1e9, bytes=6.4e9))
        snap = node.counters.snapshot(node.clock.now)
        assert snap.total("PAPI_L3_TCM") == pytest.approx(6.4e9 / 64)


class TestEquationOneEmergence:
    """The engine must reproduce the paper's Eq. 1 exactly:
    T(f)/T(f_max) = beta * (f_max/f - 1) + 1."""

    def _time_at(self, freq, cycles, nbytes):
        node = SimulatedNode()
        node.set_frequency(freq)
        engine = Engine(node)
        return run_single(engine, Work(cycles=cycles, bytes=nbytes))

    @pytest.mark.parametrize("freq", [1.6e9, 2.2e9, 2.8e9])
    def test_mixed_work_matches_eq1(self, freq):
        cfg = skylake_config()
        cycles, nbytes = 3.3e9, 5e9
        t_max = self._time_at(cfg.f_nominal, cycles, nbytes)
        t_f = self._time_at(freq, cycles, nbytes)
        compute_time = cycles / cfg.f_nominal
        beta = compute_time / t_max
        predicted = beta * (cfg.f_nominal / freq - 1.0) + 1.0
        assert t_f / t_max == pytest.approx(predicted, rel=1e-9)

    def test_pure_compute_beta_is_one(self):
        cfg = skylake_config()
        t_max = self._time_at(cfg.f_nominal, 3.3e9, 0.0)
        t_low = self._time_at(1.6e9, 3.3e9, 0.0)
        assert t_low / t_max == pytest.approx(3.3 / 1.6)

    def test_pure_memory_is_frequency_insensitive(self):
        t_max = self._time_at(3.3e9, 0.0, 10e9)
        t_low = self._time_at(1.2e9, 0.0, 10e9)
        assert t_low == pytest.approx(t_max)


class TestMemoryContention:
    def test_single_task_limited_by_link_bandwidth(self, engine, node):
        t = run_single(engine, Work(cycles=0.0, bytes=24e9))
        assert t == pytest.approx(24e9 / node.cfg.core_link_bandwidth)

    def test_24_tasks_share_node_bandwidth(self, node):
        engine = Engine(node)
        nbytes = 50e9

        def body():
            yield Work(cycles=0.0, bytes=nbytes)

        for c in range(24):
            engine.spawn(body(), core_id=c)
        t = engine.run()
        # 24 * 50 GB over 100 GB/s node bandwidth
        assert t == pytest.approx(24 * nbytes / node.cfg.mem_bandwidth)

    def test_duty_gates_memory_issue_rate(self, node):
        """Clock modulation must throttle a core's achievable bandwidth —
        the mechanism behind RAPL hurting memory-bound codes (Fig. 5)."""
        node.set_duty(0.25)
        engine = Engine(node)
        t = run_single(engine, Work(cycles=0.0, bytes=12e9))
        assert t == pytest.approx(12e9 / (node.cfg.core_link_bandwidth * 0.25))


class TestBarrier:
    def test_unequal_work_finishes_at_critical_path(self, node):
        engine = Engine(node)
        group = BarrierGroup(3)

        def body(mult):
            yield Work(cycles=mult * F_NOM)
            yield Barrier(group)

        for i, mult in enumerate([1.0, 2.0, 3.0]):
            engine.spawn(body(mult), core_id=i)
        t = engine.run()
        assert t == pytest.approx(3.0)

    def test_waiting_ranks_burn_spin_instructions(self, node):
        engine = Engine(node)
        group = BarrierGroup(2)

        def body(mult):
            yield Work(cycles=mult * F_NOM, instructions=0.0)
            yield Barrier(group)

        engine.spawn(body(1.0), core_id=0)
        engine.spawn(body(2.0), core_id=1)
        engine.run()
        snap = node.counters.snapshot(node.clock.now)
        # core 0 spins for 1 s at f_nom * spin_ipc
        expected = F_NOM * node.cfg.spin_ipc * 1.0
        assert snap.tot_ins[0] == pytest.approx(expected, rel=1e-6)
        assert snap.tot_ins[1] == pytest.approx(0.0, abs=1.0)

    def test_barrier_is_reusable(self, node):
        engine = Engine(node)
        group = BarrierGroup(2)
        finish = []

        def body(rank):
            for _ in range(3):
                yield Work(cycles=F_NOM * (1 + rank))
                yield Barrier(group)
            finish.append(engine.clock.now)

        engine.spawn(body(0), core_id=0)
        engine.spawn(body(1), core_id=1)
        t = engine.run()
        assert t == pytest.approx(6.0)
        assert finish == [pytest.approx(6.0)] * 2

    def test_deadlocked_barrier_raises(self, node):
        engine = Engine(node)
        group = BarrierGroup(2)  # only one member will ever arrive

        def body():
            yield Barrier(group)

        engine.spawn(body(), core_id=0)
        with pytest.raises(SimulationError, match="deadlock"):
            engine.run()


class TestSleep:
    def test_sleep_duration(self, engine):
        t = run_single(engine, Sleep(1.5))
        assert t == pytest.approx(1.5)

    def test_zero_sleep_is_noop(self, engine):
        t = run_single(engine, Sleep(0.0), Work(cycles=F_NOM))
        assert t == pytest.approx(1.0)

    def test_sleeping_core_accrues_no_instructions(self, engine, node):
        run_single(engine, Sleep(2.0))
        snap = node.counters.snapshot(node.clock.now)
        assert snap.total("PAPI_TOT_INS") == 0.0

    def test_sleep_draws_less_power_than_work(self):
        node_s = SimulatedNode()
        run_single(Engine(node_s), Sleep(1.0))
        node_w = SimulatedNode()
        run_single(Engine(node_w), Work(cycles=F_NOM))
        assert node_s.pkg_energy < node_w.pkg_energy


class TestTimers:
    def test_timer_fires_at_time(self, engine):
        fired = []
        engine.add_timer(0.5, fired.append)
        run_single(engine, Work(cycles=F_NOM))
        assert fired == [pytest.approx(0.5)]

    def test_periodic_timer(self, engine):
        fired = []
        engine.add_timer(0.25, fired.append, period=0.25)
        run_single(engine, Work(cycles=F_NOM))
        assert len(fired) == 4
        assert fired[-1] == pytest.approx(1.0)

    def test_cancelled_timer_does_not_fire(self, engine):
        fired = []
        timer = engine.add_timer(0.5, fired.append)
        timer.cancel()
        run_single(engine, Work(cycles=F_NOM))
        assert fired == []

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SchedulingError):
            engine.add_timer(-0.1, lambda now: None)

    def test_nonpositive_period_rejected(self, engine):
        with pytest.raises(SchedulingError):
            engine.add_timer(0.1, lambda now: None, period=0.0)

    def test_frequency_change_mid_work_has_exact_timing(self, node):
        """1 s at 3.3 GHz, then the clock drops to 1.6 GHz: the remaining
        3.3e9 cycles must take exactly 3.3/1.6 seconds."""
        engine = Engine(node)
        engine.add_timer(1.0, lambda now: node.set_frequency(1.6e9))
        t = run_single(engine, Work(cycles=2 * F_NOM))
        assert t == pytest.approx(1.0 + F_NOM / 1.6e9)


class TestPublish:
    def test_publish_invokes_hooks(self, engine):
        events = []
        engine.on_publish(lambda t, topic, v: events.append((t, topic, v)))
        run_single(engine, Work(cycles=F_NOM), Publish("progress", 42.0))
        assert events == [(pytest.approx(1.0), "progress", 42.0)]

    def test_publish_takes_no_time(self, engine):
        t = run_single(engine, Publish("p", 1.0), Publish("p", 2.0))
        assert t == 0.0


class TestRunUntil:
    def test_until_stops_midway(self, engine, node):
        def body():
            yield Work(cycles=10 * F_NOM)

        engine.spawn(body(), core_id=0)
        t = engine.run(until=2.0)
        assert t == pytest.approx(2.0)
        assert not engine.all_done()

    def test_until_in_past_rejected(self, engine, node):
        node.clock.advance(5.0)
        with pytest.raises(SchedulingError):
            engine.run(until=1.0)

    def test_run_can_resume_after_until(self, engine):
        def body():
            yield Work(cycles=3 * F_NOM)

        engine.spawn(body(), core_id=0)
        engine.run(until=1.0)
        t = engine.run()
        assert t == pytest.approx(3.0)
        assert engine.all_done()


class TestSpawn:
    def test_auto_core_assignment(self, engine):
        t0 = engine.spawn(iter(()), name="a")
        t1 = engine.spawn(iter(()))
        assert t0.core_id != t1.core_id

    def test_out_of_range_core_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.spawn(iter(()), core_id=99)

    def test_exhausting_cores_raises(self, engine, node):
        for _ in range(node.cfg.n_cores):
            engine.spawn(iter(()))
        with pytest.raises(SimulationError):
            engine.spawn(iter(()))

    def test_unknown_directive_raises(self, engine):
        def body():
            yield "not-a-directive"

        engine.spawn(body(), core_id=0)
        with pytest.raises(SimulationError, match="unknown directive"):
            engine.run()


@settings(deadline=None, max_examples=40)
@given(
    items=st.lists(
        st.tuples(
            st.floats(min_value=1e6, max_value=1e10),   # cycles
            st.floats(min_value=0.0, max_value=1e10),   # bytes
        ),
        min_size=1,
        max_size=6,
    )
)
def test_work_conservation(items):
    """Instructions and L3 misses accrued equal exactly the work submitted,
    regardless of segmentation by timers."""
    node = SimulatedNode()
    engine = Engine(node)
    # a noisy periodic timer forces many integration segments
    engine.add_timer(0.001, lambda now: None, period=0.0137)

    def body():
        for cycles, nbytes in items:
            yield Work(cycles=cycles, bytes=nbytes)

    engine.spawn(body(), core_id=0)
    engine.run()
    snap = node.counters.snapshot(node.clock.now)
    total_ins = sum(c for c, _ in items)
    total_misses = sum(b for _, b in items) / node.cfg.cache_line
    assert snap.total("PAPI_TOT_INS") == pytest.approx(total_ins, rel=1e-9)
    assert snap.total("PAPI_L3_TCM") == pytest.approx(total_misses, rel=1e-9)
