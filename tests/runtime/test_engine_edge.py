"""Edge-case tests for engine scheduling semantics."""

import pytest

from repro.hardware import SimulatedNode
from repro.runtime.engine import Barrier, BarrierGroup, Engine, Sleep, Work

F_NOM = 3.3e9


@pytest.fixture()
def node():
    return SimulatedNode()


@pytest.fixture()
def engine(node):
    return Engine(node)


class TestIdleAdvance:
    def test_run_until_with_no_tasks_advances_clock(self, engine, node):
        t = engine.run(until=5.0)
        assert t == pytest.approx(5.0)

    def test_idle_advance_accrues_idle_energy(self, engine, node):
        engine.run(until=10.0)
        # 24 idle cores still leak
        assert node.pkg_energy > 0.0
        idle_power = node.pkg_energy / 10.0
        assert idle_power < 60.0

    def test_timers_fire_during_idle_advance(self, engine):
        fired = []
        engine.add_timer(1.0, fired.append, period=1.0)
        engine.run(until=4.5)
        assert len(fired) == 4

    def test_periodic_timer_does_not_prevent_termination(self, engine):
        """Regression: run() must return once all tasks are done, even
        with periodic timers pending."""
        engine.add_timer(0.1, lambda now: None, period=0.1)

        def body():
            yield Work(cycles=F_NOM)

        engine.spawn(body(), core_id=0)
        t = engine.run()
        assert t == pytest.approx(1.0)

    def test_run_after_completion_is_noop_without_until(self, engine):
        def body():
            yield Work(cycles=F_NOM)

        engine.spawn(body(), core_id=0)
        engine.run()
        t = engine.run()
        assert t == pytest.approx(1.0)


class TestMixedStates:
    def test_sleeper_and_worker_coexist(self, engine):
        done = []

        def worker():
            yield Work(cycles=2 * F_NOM)
            done.append("worker")

        def sleeper():
            yield Sleep(1.0)
            done.append("sleeper")

        engine.spawn(worker(), core_id=0)
        engine.spawn(sleeper(), core_id=1)
        t = engine.run()
        assert t == pytest.approx(2.0)
        assert done == ["sleeper", "worker"]

    def test_spinner_with_active_worker_is_not_deadlock(self, engine):
        group = BarrierGroup(2)

        def early():
            yield Barrier(group)

        def late():
            yield Work(cycles=F_NOM)
            yield Barrier(group)

        engine.spawn(early(), core_id=0)
        engine.spawn(late(), core_id=1)
        t = engine.run()
        assert t == pytest.approx(1.0)

    def test_sleep_then_work_sequence(self, engine):
        def body():
            yield Sleep(0.5)
            yield Work(cycles=F_NOM)
            yield Sleep(0.25)

        engine.spawn(body(), core_id=0)
        assert engine.run() == pytest.approx(1.75)

    def test_until_exactly_at_completion(self, engine):
        def body():
            yield Work(cycles=F_NOM)

        engine.spawn(body(), core_id=0)
        t = engine.run(until=1.0)
        assert t == pytest.approx(1.0)
        assert engine.all_done()


class TestUncoreScale:
    def test_scale_reduces_available_bandwidth(self, node):
        node.set_uncore_scale(0.5)
        engine = Engine(node)

        def body():
            yield Work(cycles=0.0, bytes=50e9)

        for c in range(24):
            engine.spawn(body(), core_id=c)
        t = engine.run()
        expected = 24 * 50e9 / (node.cfg.mem_bandwidth * 0.5)
        assert t == pytest.approx(expected)

    def test_scale_validation(self, node):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            node.set_uncore_scale(0.0)
        with pytest.raises(ConfigurationError):
            node.set_uncore_scale(1.5)

    def test_effective_bandwidth_property(self, node):
        node.set_uncore_scale(0.8)
        assert node.effective_mem_bandwidth == pytest.approx(
            0.8 * node.cfg.mem_bandwidth
        )
