"""Property-based stress tests for the engine's execution semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import SimulatedNode
from repro.runtime.engine import Barrier, BarrierGroup, Engine, Sleep, Work
from repro.telemetry import MessageBus, ProgressMonitor
from repro.runtime.engine import Publish

F_NOM = 3.3e9

# One worker's per-iteration plan: (compute cycles, sleep seconds)
worker_plan = st.tuples(
    st.floats(min_value=1e6, max_value=2e9),
    st.floats(min_value=0.0, max_value=0.3),
)


@settings(max_examples=30, deadline=None)
@given(
    plans=st.lists(worker_plan, min_size=1, max_size=4),
    n_iterations=st.integers(min_value=1, max_value=5),
)
def test_random_spmd_program_timing_and_conservation(plans, n_iterations):
    """For any barrier-synchronized SPMD program of work+sleep, the
    total runtime equals iterations x max-worker-iteration-time, and
    instruction counters conserve the submitted work exactly."""
    node = SimulatedNode()
    engine = Engine(node)
    group = BarrierGroup(len(plans))

    def body(cycles, sleep_s):
        for _ in range(n_iterations):
            yield Work(cycles=cycles)
            if sleep_s > 0:
                yield Sleep(sleep_s)
            yield Barrier(group)

    for w, (cycles, sleep_s) in enumerate(plans):
        engine.spawn(body(cycles, sleep_s), core_id=w)
    t_end = engine.run()

    per_iter = max(c / F_NOM + s for c, s in plans)
    assert t_end == pytest.approx(n_iterations * per_iter, rel=1e-9)

    snap = node.counters.snapshot(t_end)
    # work instructions: cycles (IPC 1); spin instructions on top
    min_expected = n_iterations * sum(c for c, _ in plans)
    assert snap.total("PAPI_TOT_INS") >= min_expected * (1 - 1e-12)
    # spin instructions are bounded by total wait time at full clock
    total_wait = sum(
        n_iterations * (per_iter - (c / F_NOM + s)) for c, s in plans
    )
    max_spin = total_wait * F_NOM * node.cfg.spin_ipc
    assert snap.total("PAPI_TOT_INS") <= (min_expected + max_spin) * (1 + 1e-9)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1,
                    max_size=40),
    gap_cycles=st.floats(min_value=1e7, max_value=2e9),
    interval=st.floats(min_value=0.3, max_value=2.0),
)
def test_monitor_conserves_published_progress(values, gap_cycles, interval):
    """Whatever the publish cadence and collection interval, the monitor
    series integrates back to exactly the total progress published
    (lossless transport)."""
    node = SimulatedNode()
    engine = Engine(node)
    bus = MessageBus(node.clock)
    pub = bus.pub_socket()
    engine.on_publish(lambda t, topic, v: pub.send(topic, v))
    monitor = ProgressMonitor(engine, bus.sub_socket("p"),
                              interval=interval)

    def body():
        for v in values:
            yield Work(cycles=gap_cycles)
            yield Publish("p", v)

    engine.spawn(body(), core_id=0)
    t_end = engine.run()
    # run one extra collection interval so the last bucket closes
    engine.run(until=t_end + interval + 1e-9)
    collected = float(monitor.series.values.sum()) * interval
    assert collected == pytest.approx(sum(values), rel=1e-9)
