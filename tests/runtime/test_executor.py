"""Tests for the RunExecutor process-pool fan-out."""

import os

import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.runtime.executor import RunExecutor, default_workers, derive_seed


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"bad item {x}")


def die(x):
    os._exit(13)  # simulate a segfault/OOM kill: no exception, no cleanup


def seeded_sum(args):
    """A worker whose output depends only on its derived seed."""
    base, idx = args
    import numpy as np

    rng = np.random.default_rng(derive_seed(base, idx))
    return float(rng.random(16).sum())


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(42, 3) == derive_seed(42, 3)

    def test_distinct_across_indices(self):
        seeds = [derive_seed(42, i) for i in range(64)]
        assert len(set(seeds)) == 64

    def test_distinct_across_bases(self):
        assert derive_seed(1, 0) != derive_seed(2, 0)

    def test_rejects_negative_index(self):
        with pytest.raises(ConfigurationError):
            derive_seed(1, -1)


class TestRunExecutor:
    def test_serial_map(self):
        assert RunExecutor(1).map(square, [1, 2, 3]) == [1, 4, 9]

    def test_pool_matches_serial_and_preserves_order(self):
        items = [(7, i) for i in range(8)]
        serial = RunExecutor(1).map(seeded_sum, items)
        pooled = RunExecutor(4).map(seeded_sum, items)
        assert pooled == serial  # bit-identical, in submission order

    def test_seeds_stable_across_pool_sizes(self):
        items = [(3, i) for i in range(6)]
        results = {w: RunExecutor(w).map(seeded_sum, items)
                   for w in (1, 2, 3)}
        assert results[1] == results[2] == results[3]

    def test_single_item_runs_in_process(self):
        assert RunExecutor(8).map(square, [5]) == [25]

    def test_empty_input(self):
        assert RunExecutor(4).map(square, []) == []

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="bad item"):
            RunExecutor(2).map(boom, [1, 2])

    def test_worker_crash_raises_simulation_error(self):
        with pytest.raises(SimulationError, match="worker process died"):
            RunExecutor(2).map(die, [1, 2, 3])

    def test_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError):
            RunExecutor(0)

    def test_rejects_unknown_start_method(self):
        with pytest.raises(ConfigurationError):
            RunExecutor(2, start_method="teleport")

    def test_default_workers_positive(self):
        assert default_workers() >= 1
        assert RunExecutor(None).workers == default_workers()


@pytest.mark.slow
class TestExecutorWithSimulation:
    def test_delta_protocol_identical_serial_vs_pool(self):
        from repro.experiments.harness import Testbed

        kwargs = dict(
            beta=0.99, repeats=2, uncapped_window=5.0, capped_window=6.0,
            warmup=2.0, app_kwargs={"n_steps": 100_000, "n_workers": 8},
        )
        serial = Testbed(seed=4).measure_delta_progress(
            "lammps", 90.0, **kwargs)
        pooled = Testbed(seed=4).measure_delta_progress(
            "lammps", 90.0, executor=RunExecutor(2), **kwargs)
        assert pooled == serial  # frozen dataclass: field-wise equality
