"""Tests for the RunExecutor content-keyed on-disk result cache."""

import os
import pickle

from repro.runtime.executor import CACHE_ENV, RunExecutor
from repro.stack import StackSpec

CALLS_FILE = None  # set per-test via _counting_fn's closure-free protocol


def counted(x):
    """Module-level worker that records each invocation on disk (so the
    count survives process pools) and returns a deterministic value."""
    with open(os.environ["_EXECUTOR_TEST_CALLS"], "a") as f:
        f.write(f"{x}\n")
    return x * 10


def spec_run(item):
    spec, seed = item
    return (spec.app_name, seed, 3.5)


def _calls(path):
    try:
        with open(path) as f:
            return len(f.readlines())
    except FileNotFoundError:
        return 0


class TestResultCache:
    def test_disabled_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert RunExecutor(1).cache_dir is None

    def test_env_var_enables(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        assert RunExecutor(1).cache_dir == str(tmp_path)

    def test_explicit_dir_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "/nope")
        ex = RunExecutor(1, cache_dir=tmp_path / "c")
        assert ex.cache_dir == str(tmp_path / "c")

    def test_hit_skips_execution(self, tmp_path, monkeypatch):
        calls = tmp_path / "calls.txt"
        monkeypatch.setenv("_EXECUTOR_TEST_CALLS", str(calls))
        ex = RunExecutor(1, cache_dir=tmp_path / "cache")
        first = ex.map(counted, [1, 2, 3])
        assert first == [10, 20, 30]
        assert _calls(calls) == 3
        second = ex.map(counted, [1, 2, 3])
        assert second == first
        assert _calls(calls) == 3  # all served from disk
        # partial overlap: only the new item executes
        third = ex.map(counted, [2, 4])
        assert third == [20, 40]
        assert _calls(calls) == 4

    def test_key_includes_function_identity(self, tmp_path, monkeypatch):
        calls = tmp_path / "calls.txt"
        monkeypatch.setenv("_EXECUTOR_TEST_CALLS", str(calls))
        ex = RunExecutor(1, cache_dir=tmp_path / "cache")
        assert ex.map(counted, [5]) == [50]
        # same item, different fn -> different key, executes normally
        assert ex.map(spec_run, [(StackSpec(app_name="lammps"), 5)]) \
            == [("lammps", 5, 3.5)]
        assert _calls(calls) == 1

    def test_stack_spec_items_are_cacheable(self, tmp_path):
        ex = RunExecutor(1, cache_dir=tmp_path / "cache")
        item = (StackSpec(app_name="lammps", seed=7), 7)
        assert ex.map(spec_run, [item]) == [("lammps", 7, 3.5)]
        entries = list((tmp_path / "cache").glob("*.pkl"))
        assert len(entries) == 1
        assert ex.map(spec_run, [item]) == [("lammps", 7, 3.5)]
        assert list((tmp_path / "cache").glob("*.pkl")) == entries

    def test_corrupt_entry_recomputes(self, tmp_path, monkeypatch):
        calls = tmp_path / "calls.txt"
        monkeypatch.setenv("_EXECUTOR_TEST_CALLS", str(calls))
        ex = RunExecutor(1, cache_dir=tmp_path / "cache")
        ex.map(counted, [8])
        [entry] = (tmp_path / "cache").glob("*.pkl")
        entry.write_bytes(b"not a pickle")
        assert ex.map(counted, [8]) == [80]
        assert _calls(calls) == 2
        # the recomputation repaired the entry
        with open(entry, "rb") as f:
            assert pickle.load(f) == 80

    def test_unpicklable_item_bypasses_cache(self, tmp_path, monkeypatch):
        calls = tmp_path / "calls.txt"
        monkeypatch.setenv("_EXECUTOR_TEST_CALLS", str(calls))
        ex = RunExecutor(1, cache_dir=tmp_path / "cache")

        class Opaque:
            def __reduce__(self):
                raise TypeError("cannot pickle")

            def __mul__(self, other):
                return 99

        assert ex.map(counted, [Opaque()]) == [99]
        assert not list((tmp_path / "cache").glob("*.pkl"))

    def test_pooled_map_uses_cache(self, tmp_path, monkeypatch):
        calls = tmp_path / "calls.txt"
        monkeypatch.setenv("_EXECUTOR_TEST_CALLS", str(calls))
        ex = RunExecutor(2, cache_dir=tmp_path / "cache")
        items = list(range(6))
        assert ex.map(counted, items) == [10 * i for i in items]
        n_first = _calls(calls)
        assert n_first == 6
        assert ex.map(counted, items) == [10 * i for i in items]
        assert _calls(calls) == n_first
