"""Executor observability tests: cache tallies, spans, and parity."""

import pytest

from repro import obs
from repro.runtime.executor import (
    RunExecutor,
    cache_stats,
    reset_cache_stats,
)


def square(x):
    return x * x


@pytest.fixture(autouse=True)
def _clean_state():
    obs.disable()
    reset_cache_stats()
    yield
    obs.disable()
    reset_cache_stats()


class TestCacheStats:
    def test_tally_counts_hits_and_misses(self, tmp_path):
        ex = RunExecutor(1, cache_dir=tmp_path)
        ex.map(square, [1, 2, 3])
        ex.map(square, [1, 2, 3])
        stats = cache_stats()
        assert stats["hits"] == 3 and stats["misses"] == 3
        assert stats["hit_rate"] == 0.5
        assert ex.cache_hits == 3 and ex.cache_misses == 3

    def test_reset_zeroes_the_process_tally(self, tmp_path):
        ex = RunExecutor(1, cache_dir=tmp_path)
        ex.map(square, [1])
        reset_cache_stats()
        stats = cache_stats()
        assert stats == {"hits": 0, "misses": 0, "hit_rate": 0.0}

    def test_uncached_executor_leaves_the_tally_alone(self, monkeypatch):
        from repro.runtime.executor import CACHE_ENV
        monkeypatch.delenv(CACHE_ENV, raising=False)
        RunExecutor(1).map(square, [1, 2])
        assert cache_stats() == {"hits": 0, "misses": 0, "hit_rate": 0.0}

    def test_instance_counters_are_per_executor(self, tmp_path):
        a = RunExecutor(1, cache_dir=tmp_path)
        a.map(square, [1])
        b = RunExecutor(1, cache_dir=tmp_path)
        b.map(square, [1])
        assert (a.cache_hits, a.cache_misses) == (0, 1)
        assert (b.cache_hits, b.cache_misses) == (1, 0)


class TestTracing:
    def events(self, name):
        return [ev for ev in obs.tracer().events if ev["name"] == name]

    def test_cached_map_emits_hit_and_miss_instants(self, tmp_path):
        obs.enable()
        ex = RunExecutor(1, cache_dir=tmp_path)
        ex.map(square, [1, 2])
        ex.map(square, [2, 3])
        assert len(self.events("executor.cache_miss")) == 3
        assert len(self.events("executor.cache_hit")) == 1
        maps = self.events("executor.map")
        assert [m["args"]["cached"] for m in maps] == [True, True]
        assert maps[1]["args"]["cache_hits"] == 1
        assert maps[1]["args"]["cache_misses"] == 1

    def test_uncached_map_span_says_so(self, monkeypatch):
        from repro.runtime.executor import CACHE_ENV
        monkeypatch.delenv(CACHE_ENV, raising=False)
        obs.enable()
        RunExecutor(1).map(square, [1, 2, 3])
        [span] = self.events("executor.map")
        assert span["args"]["cached"] is False
        assert span["args"]["items"] == 3
        assert span["args"]["fn"] == "square"

    def test_serial_traced_run_spans_carry_queue_wait(self, monkeypatch):
        from repro.runtime.executor import CACHE_ENV
        monkeypatch.delenv(CACHE_ENV, raising=False)
        obs.enable()
        RunExecutor(1).map(square, [4, 5])
        runs = self.events("executor.run")
        assert [r["args"]["index"] for r in runs] == [0, 1]
        waits = [r["args"]["queue_wait_ms"] for r in runs]
        assert waits[0] <= waits[1]  # later runs queue behind earlier

    def test_metrics_count_run_outcomes(self, tmp_path):
        obs.enable()
        ex = RunExecutor(1, cache_dir=tmp_path)
        ex.map(square, [1, 2])
        ex.map(square, [1, 2])
        snap = {(r["name"], r["labels"].get("outcome")): r["value"]
                for r in obs.metrics().snapshot()}
        assert snap[("executor.runs", "computed")] == 2
        assert snap[("executor.runs", "cached")] == 2

    def test_traced_results_match_untraced(self, tmp_path):
        plain = RunExecutor(1, cache_dir=tmp_path / "a").map(
            square, [1, 2, 3])
        obs.enable()
        traced = RunExecutor(1, cache_dir=tmp_path / "b").map(
            square, [1, 2, 3])
        assert traced == plain == [1, 4, 9]
