"""Unit tests for the MPI-like and OpenMP-like programming surfaces."""

import pytest

from repro.exceptions import ConfigurationError
from repro.hardware import SimulatedNode
from repro.runtime.engine import Engine, Work
from repro.runtime.mpi import SimMPI
from repro.runtime.openmp import OmpTeam

F_NOM = 3.3e9


@pytest.fixture()
def engine():
    return Engine(SimulatedNode())


class TestSimMPI:
    def test_rank_pinning(self, engine):
        mpi = SimMPI(engine, size=4)
        tasks = mpi.launch(lambda comm, rank: iter(()))
        assert [t.core_id for t in tasks] == [0, 1, 2, 3]

    def test_size_validation(self, engine):
        with pytest.raises(ConfigurationError):
            SimMPI(engine, size=0)
        with pytest.raises(ConfigurationError):
            SimMPI(engine, size=engine.node.cfg.n_cores + 1)

    def test_barrier_synchronizes_ranks(self, engine):
        mpi = SimMPI(engine, size=3)
        finish_times = {}

        def body(comm, rank):
            yield Work(cycles=(rank + 1) * F_NOM)
            yield comm.barrier()
            finish_times[rank] = comm.wtime()

        mpi.launch(body)
        engine.run()
        assert all(t == pytest.approx(3.0) for t in finish_times.values())

    def test_wtime_is_sim_time(self, engine):
        mpi = SimMPI(engine, size=1)
        seen = []

        def body(comm, rank):
            yield Work(cycles=F_NOM)
            seen.append(comm.wtime())

        mpi.launch(body)
        engine.run()
        assert seen == [pytest.approx(1.0)]


class TestOmpTeam:
    def test_thread_pinning(self, engine):
        team = OmpTeam(engine, n_threads=4)
        tasks = team.launch(lambda tm, tid: iter(()))
        assert [t.core_id for t in tasks] == [0, 1, 2, 3]

    def test_size_validation(self, engine):
        with pytest.raises(ConfigurationError):
            OmpTeam(engine, n_threads=0)
        with pytest.raises(ConfigurationError):
            OmpTeam(engine, n_threads=engine.node.cfg.n_cores + 1)

    def test_region_barrier_synchronizes(self, engine):
        team = OmpTeam(engine, n_threads=3)
        order = []

        def body(tm, tid):
            for _it in range(2):
                yield Work(cycles=(tid + 1) * F_NOM / 10)
                yield tm.region_barrier()
                if tid == 0:
                    order.append(engine.clock.now)

        team.launch(body)
        engine.run()
        # each region ends when the slowest thread (0.3 s) arrives
        assert order == [pytest.approx(0.3), pytest.approx(0.6)]
