"""Unit tests for the wall-clock epoch pacer (pure arithmetic half)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime.pacing import EpochPacer


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"sim_rate": 0.0},
        {"sim_rate": -1.0},
        {"epoch": 0.0},
        {"epoch": -0.5},
        {"max_epochs_per_tick": 0},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        defaults = dict(sim_rate=10.0, epoch=1.0)
        defaults.update(kwargs)
        with pytest.raises(ConfigurationError):
            EpochPacer(defaults["sim_rate"], defaults["epoch"],
                       max_epochs_per_tick=defaults.get(
                           "max_epochs_per_tick", 1000))

    def test_rejects_negative_and_nan_elapsed(self):
        pacer = EpochPacer(10.0, 1.0)
        with pytest.raises(ConfigurationError):
            pacer.epochs_due(-0.1)
        with pytest.raises(ConfigurationError):
            pacer.epochs_due(float("nan"))


class TestPacing:
    def test_whole_epochs(self):
        pacer = EpochPacer(10.0, 1.0)
        assert pacer.epochs_due(1.0) == 10

    def test_fractional_carry_accumulates(self):
        # 10 sim-s/wall-s, 1 s epochs: 0.35 s ticks owe 3.5 epochs each
        pacer = EpochPacer(10.0, 1.0)
        assert pacer.epochs_due(0.35) == 3
        assert pacer.epochs_due(0.35) == 4  # 0.5 + 3.5
        assert pacer.epochs_due(0.30) == 3

    def test_converges_on_sim_rate(self):
        pacer = EpochPacer(7.0, 0.5)  # 14 epochs per wall second
        total = sum(pacer.epochs_due(0.013) for _ in range(1000))
        # within one epoch of exact (float error in the carry stream)
        assert abs(total - 1000 * 0.013 * 14) <= 1.0

    def test_sub_epoch_ticks_eventually_fire(self):
        pacer = EpochPacer(1.0, 1.0)
        due = [pacer.epochs_due(0.25) for _ in range(8)]
        assert sum(due) == 2
        assert due[3] == 1 and due[7] == 1

    def test_backlog_clamped_and_dropped(self):
        pacer = EpochPacer(10.0, 1.0, max_epochs_per_tick=5)
        # a 100 s stall owes 1000 epochs; only 5 run, the rest vanish
        assert pacer.epochs_due(100.0) == 5
        assert pacer.epochs_due(0.1) == 1  # no replayed debt

    def test_reset_forgets_carry(self):
        pacer = EpochPacer(10.0, 1.0)
        assert pacer.epochs_due(0.35) == 3
        pacer.reset()
        assert pacer.epochs_due(0.35) == 3
