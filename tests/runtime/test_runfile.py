"""The run-checkpoint file layer: envelope validation, atomic writes,
the epoch-stamped store, and source resolution (file / dir / store /
in-memory checkpoint)."""

import dataclasses
import os
import pickle

import pytest

from repro.exceptions import CheckpointError, ConfigurationError
from repro.runtime.runfile import (
    RUN_CHECKPOINT_VERSION,
    CheckpointStore,
    RunCheckpoint,
    load_run_checkpoint,
    resolve_checkpoint,
    save_run_checkpoint,
)


def ckpt(epoch=0, kind="cluster", now=None):
    return RunCheckpoint(
        version=RUN_CHECKPOINT_VERSION, kind=kind, epoch=epoch,
        now=float(epoch) if now is None else now,
        config={"n_nodes": 2}, state={"version": 1, "payload": epoch})


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        assert save_run_checkpoint(ckpt(3), path) == path
        loaded = load_run_checkpoint(path)
        assert loaded == ckpt(3)

    def test_rejects_unknown_kind_on_save(self, tmp_path):
        with pytest.raises(ConfigurationError, match="kind"):
            save_run_checkpoint(ckpt(kind="banana"),
                                str(tmp_path / "x.ckpt"))

    def test_atomic_no_temp_left(self, tmp_path):
        save_run_checkpoint(ckpt(), str(tmp_path / "run.ckpt"))
        assert os.listdir(tmp_path) == ["run.ckpt"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_run_checkpoint(str(tmp_path / "nope.ckpt"))

    def test_not_a_run_checkpoint(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(CheckpointError, match="RunCheckpoint"):
            load_run_checkpoint(str(path))

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(CheckpointError):
            load_run_checkpoint(str(path))

    def test_envelope_version_mismatch(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_bytes(pickle.dumps(
            dataclasses.replace(ckpt(), version=99)))
        with pytest.raises(CheckpointError, match="99"):
            load_run_checkpoint(str(path))

    def test_kind_pinning(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        save_run_checkpoint(ckpt(kind="scheduler"), path)
        assert load_run_checkpoint(path, kind="scheduler").kind == \
            "scheduler"
        with pytest.raises(CheckpointError, match="scheduler"):
            load_run_checkpoint(path, kind="cluster")


class TestCheckpointStore:
    def test_file_naming(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "s"))
        assert store.path_for(7).endswith("epoch-00000007.ckpt")

    def test_creates_root(self, tmp_path):
        root = tmp_path / "deep" / "store"
        CheckpointStore(str(root))
        assert root.is_dir()

    def test_save_and_epochs_sorted(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        for epoch in (4, 2, 8):
            store.save(ckpt(epoch))
        assert store.epochs() == [2, 4, 8]
        assert len(store) == 3

    def test_ignores_foreign_files(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hi")
        (tmp_path / "epoch-junk.ckpt").write_text("hi")
        store = CheckpointStore(str(tmp_path))
        store.save(ckpt(1))
        assert store.epochs() == [1]

    def test_latest(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        assert store.latest() is None
        store.save(ckpt(2))
        store.save(ckpt(5))
        assert store.latest().epoch == 5

    def test_rewind_picks_newest_at_or_before(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        for epoch in (2, 4, 6):
            store.save(ckpt(epoch))
        assert store.rewind(5).epoch == 4
        assert store.rewind(4).epoch == 4
        with pytest.raises(CheckpointError, match="no checkpoint"):
            store.rewind(1)

    def test_keep_prunes_oldest(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep=2)
        for epoch in (1, 2, 3, 4):
            store.save(ckpt(epoch))
        assert store.epochs() == [3, 4]

    def test_kind_pinned_store_refuses_other_kind(self, tmp_path):
        store = CheckpointStore(str(tmp_path), kind="cluster")
        with pytest.raises(CheckpointError, match="daemon"):
            store.save(ckpt(kind="daemon"))
        with pytest.raises(ConfigurationError):
            CheckpointStore(str(tmp_path), kind="banana")

    def test_resave_same_epoch_replaces(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save(ckpt(3, now=3.0))
        store.save(ckpt(3, now=30.0))
        assert store.epochs() == [3]
        assert store.load(3).now == 30.0


class TestResolveCheckpoint:
    def test_passthrough(self):
        c = ckpt(2)
        assert resolve_checkpoint(c, kind="cluster") is c

    def test_passthrough_wrong_kind(self):
        with pytest.raises(CheckpointError, match="cluster"):
            resolve_checkpoint(ckpt(kind="daemon"), kind="cluster")

    def test_file_path(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        save_run_checkpoint(ckpt(4), path)
        assert resolve_checkpoint(path, kind="cluster").epoch == 4
        with pytest.raises(CheckpointError, match="epoch 4"):
            resolve_checkpoint(path, kind="cluster", epoch=3)

    def test_store_object_and_dir_path(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        for epoch in (2, 4):
            store.save(ckpt(epoch))
        assert resolve_checkpoint(store, kind="cluster").epoch == 4
        assert resolve_checkpoint(str(tmp_path),
                                  kind="cluster").epoch == 4
        assert resolve_checkpoint(str(tmp_path), kind="cluster",
                                  epoch=3).epoch == 2

    def test_empty_store(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoints"):
            resolve_checkpoint(str(tmp_path / "empty"), kind="cluster")

    def test_rejects_other_types(self):
        with pytest.raises(ConfigurationError):
            resolve_checkpoint(42, kind="cluster")
