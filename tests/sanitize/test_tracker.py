"""Unit tests for the runtime lock sanitizer (repro.sanitize)."""

import threading

import pytest

from repro import sanitize
from repro.sanitize import (
    GuardedProxy,
    GuardViolationError,
    LockOrderError,
    LockTracker,
    SanitizerError,
    TrackedLock,
)

pytestmark = pytest.mark.own_tracker


class TestActivation:
    def test_off_by_default_returns_plain_primitives(self):
        assert sanitize.current() is None
        lock = sanitize.tracked_lock("X._lock")
        rlock = sanitize.tracked_rlock("X._rlock")
        assert not isinstance(lock, TrackedLock)
        assert not isinstance(rlock, TrackedLock)
        # and they behave like locks
        with lock:
            pass
        with rlock:
            with rlock:
                pass

    def test_guards_are_noops_when_off(self):
        items = []
        assert sanitize.guarded(items, "X.items",
                                sanitize.tracked_lock("X._lock")) \
            is items

        class Holder:
            pass

        h = Holder()
        h.items = items
        sanitize.guard_attr(h, "items", "X.items",
                            sanitize.tracked_lock("X._lock"))
        assert h.items is items
        sanitize.guard_fields(h, ("items",),
                              sanitize.tracked_lock("X._lock"))
        assert type(h) is Holder

    def test_active_installs_and_removes(self):
        with sanitize.active() as tracker:
            assert sanitize.current() is tracker
            assert isinstance(sanitize.tracked_lock("X._lock"),
                              TrackedLock)
        assert sanitize.current() is None

    def test_nested_activation_raises(self):
        with sanitize.active():
            with pytest.raises(SanitizerError, match="already active"):
                sanitize.activate(LockTracker())

    def test_deactivate_is_idempotent(self):
        sanitize.deactivate()
        sanitize.deactivate()
        assert sanitize.current() is None


class TestLockOrder:
    def test_inversion_raises_even_without_contention(self):
        with sanitize.active() as tracker:
            a = sanitize.tracked_lock("T.a")
            b = sanitize.tracked_lock("T.b")
            with a:
                with b:
                    pass
            with pytest.raises(LockOrderError, match="opposite orders"):
                with b:
                    with a:
                        pass
            assert any(v.kind == "lock-order"
                       for v in tracker.violations)

    def test_consistent_order_is_clean(self):
        with sanitize.active() as tracker:
            a = sanitize.tracked_lock("T.a")
            b = sanitize.tracked_lock("T.b")
            for _ in range(3):
                with a:
                    with b:
                        pass
            assert tracker.violations == []

    def test_nonreentrant_reacquire_raises(self):
        with sanitize.active():
            lock = sanitize.tracked_lock("T.lock")
            with pytest.raises(LockOrderError, match="re-acquired"):
                with lock:
                    with lock:
                        pass

    def test_rlock_reacquire_is_fine(self):
        with sanitize.active() as tracker:
            lock = sanitize.tracked_rlock("T.rlock")
            with lock:
                with lock:
                    pass
            assert tracker.violations == []

    def test_nonstrict_records_instead_of_raising(self):
        with sanitize.active(LockTracker(strict=False)) as tracker:
            a = sanitize.tracked_lock("T.a")
            b = sanitize.tracked_lock("T.b")
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass  # no raise
            kinds = [v.kind for v in tracker.violations]
            assert "lock-order" in kinds
            assert "opposite orders" in tracker.render_violations()

    def test_cross_thread_inversion_detected(self):
        with sanitize.active(LockTracker(strict=False)) as tracker:
            a = sanitize.tracked_lock("T.a")
            b = sanitize.tracked_lock("T.b")

            def fwd():
                with a:
                    with b:
                        pass

            t = threading.Thread(target=fwd)
            t.start()
            t.join()
            with b:
                with a:
                    pass
            assert any(v.kind == "lock-order"
                       for v in tracker.violations)

    def test_held_by_current_thread(self):
        with sanitize.active():
            lock = sanitize.tracked_lock("T.lock")
            assert not lock.held_by_current_thread()
            with lock:
                assert lock.held_by_current_thread()
            assert not lock.held_by_current_thread()


class TestGuardedProxy:
    def _fixture(self, obj, *, reads=False, strict=True):
        tracker = LockTracker(strict=strict)
        sanitize.activate(tracker)
        lock = sanitize.tracked_lock("T.lock")
        proxy = sanitize.guarded(obj, "T.items", lock, reads=reads)
        return tracker, lock, proxy

    def teardown_method(self):
        sanitize.deactivate()

    def test_mutation_without_lock_raises(self):
        _t, _lock, items = self._fixture([])
        with pytest.raises(GuardViolationError, match="T.items.append"):
            items.append(1)

    def test_mutation_under_lock_passes(self):
        _t, lock, items = self._fixture([])
        with lock:
            items.append(1)
        assert list(items) == [1]

    def test_setitem_delitem_checked(self):
        _t, lock, d = self._fixture({})
        with lock:
            d["k"] = 1
            del d["k"]
            d["k"] = 2
        with pytest.raises(GuardViolationError):
            d["x"] = 1
        with pytest.raises(GuardViolationError):
            del d["k"]

    def test_reads_unchecked_by_default(self):
        tracker, lock, items = self._fixture([])
        with lock:
            items.append(1)
        # all fine without the lock:
        assert len(items) == 1
        assert 1 in items
        assert list(items) == [1]
        assert items[0] == 1
        assert tracker.violations == []

    def test_reads_checked_when_requested(self):
        _t, lock, items = self._fixture(set(), reads=True)
        with lock:
            items.add(1)
            assert len(items) == 1
        with pytest.raises(GuardViolationError):
            list(items)
        with pytest.raises(GuardViolationError):
            len(items)

    def test_proxy_equates_and_hashes_like_wrapped(self):
        _t, lock, items = self._fixture((1, 2))
        assert items == (1, 2)
        assert items != (2, 1)
        assert hash(items) == hash((1, 2))
        tup = self._wrap_second((1, 2), lock)
        assert items == tup

    def _wrap_second(self, obj, lock):
        return sanitize.guarded(obj, "T.other", lock)

    def test_repr_names_the_guard(self):
        _t, _lock, items = self._fixture([1])
        assert "T.items" in repr(items)
        assert isinstance(items, GuardedProxy)


class TestGuardFields:
    class Counter:
        __slots__ = ("n", "label")

        def __init__(self):
            self.n = 0
            self.label = "x"

    def teardown_method(self):
        sanitize.deactivate()

    def test_field_write_without_lock_raises(self):
        sanitize.activate(LockTracker())
        lock = sanitize.tracked_lock("C.lock")
        c = self.Counter()
        sanitize.guard_fields(c, ("n",), lock)
        with pytest.raises(GuardViolationError, match="Counter.n"):
            c.n = 5

    def test_field_write_under_lock_passes(self):
        sanitize.activate(LockTracker())
        lock = sanitize.tracked_lock("C.lock")
        c = self.Counter()
        sanitize.guard_fields(c, ("n",), lock)
        with lock:
            c.n = 5
        assert c.n == 5
        # unguarded fields stay free
        c.label = "y"
        assert c.label == "y"

    def test_second_call_merges_fields(self):
        sanitize.activate(LockTracker())
        lock = sanitize.tracked_lock("C.lock")
        c = self.Counter()
        sanitize.guard_fields(c, ("n",), lock)
        sanitize.guard_fields(c, ("label",), lock)
        with pytest.raises(GuardViolationError):
            c.label = "z"
        with lock:
            c.n = 1
            c.label = "z"

    def test_reads_stay_free(self):
        sanitize.activate(LockTracker())
        lock = sanitize.tracked_lock("C.lock")
        c = self.Counter()
        sanitize.guard_fields(c, ("n",), lock)
        assert c.n == 0  # no lock needed to read
