"""Tests for the typed scheduler event log."""

import pytest

from repro.exceptions import ConfigurationError
from repro.scheduler import (
    BudgetViolation,
    CapSelected,
    EventLog,
    JobStarted,
    JobSubmitted,
)


class TestEventLog:
    def test_append_and_filter_by_type(self):
        log = EventLog()
        log.append(JobSubmitted(time=0.0, job_id="a", app_name="lammps",
                                n_nodes=2, max_slowdown=0.2))
        log.append(CapSelected(time=1.0, job_id="a", cap=65.0,
                               predicted_slowdown=0.15, tolerance=0.2))
        log.append(JobStarted(time=1.0, job_id="a", slots=(0, 1), cap=65.0,
                              demand=130.0))
        assert len(log) == 3
        caps = log.of_type(CapSelected)
        assert len(caps) == 1 and caps[0].cap == 65.0
        assert log[0].job_id == "a"

    def test_rejects_time_travel(self):
        log = EventLog()
        log.append(BudgetViolation(time=5.0, power=320.0, budget=300.0))
        with pytest.raises(ConfigurationError):
            log.append(BudgetViolation(time=4.0, power=320.0, budget=300.0))

    def test_render_mentions_type_and_fields(self):
        log = EventLog()
        log.append(BudgetViolation(time=2.0, power=321.5, budget=300.0))
        text = log.render()
        assert "BudgetViolation" in text
        assert "321.5" in text
