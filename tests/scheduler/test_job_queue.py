"""Tests for the scheduler's job model and submission queue."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.scheduler import Job, JobQueue, JobRecord


def _job(job_id="j0", **kwargs):
    defaults = dict(app_name="lammps", n_nodes=2, work_units=100.0)
    defaults.update(kwargs)
    return Job(job_id=job_id, **defaults)


class TestJob:
    def test_valid_job(self):
        job = _job(max_slowdown=0.2, submit_time=5.0)
        assert job.eco
        assert job.n_nodes == 2

    def test_rigid_job_is_not_eco(self):
        assert not _job().eco

    @pytest.mark.parametrize("kwargs", [
        {"job_id": ""},
        {"n_nodes": 0},
        {"work_units": 0.0},
        {"work_units": -5.0},
        {"submit_time": -1.0},
        {"max_slowdown": 0.0},
        {"max_slowdown": 1.0},
        {"max_slowdown": -0.2},
    ])
    def test_rejects_bad_fields(self, kwargs):
        base = dict(job_id="j0", app_name="lammps", n_nodes=1,
                    work_units=10.0)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            Job(**base)


class TestJobRecord:
    def test_derived_times(self):
        rec = JobRecord(job=_job(submit_time=2.0))
        rec.start_time = 5.0
        rec.end_time = 15.0
        rec.node_power = 60.0
        assert rec.wait_time == pytest.approx(3.0)
        assert rec.run_time == pytest.approx(10.0)
        assert rec.demand == pytest.approx(120.0)

    def test_within_tolerance_semantics(self):
        rigid = JobRecord(job=_job())
        assert rigid.within_tolerance  # no tolerance declared

        eco = JobRecord(job=_job(max_slowdown=0.2))
        assert not eco.within_tolerance  # not measured yet
        eco.measured_slowdown = 0.19
        assert eco.within_tolerance
        eco.measured_slowdown = 0.21
        assert not eco.within_tolerance

    def test_prediction_error_is_absolute(self):
        rec = JobRecord(job=_job(max_slowdown=0.2))
        rec.predicted_slowdown = 0.10
        rec.measured_slowdown = 0.14
        assert rec.prediction_error == pytest.approx(0.04)
        assert math.isnan(JobRecord(job=_job()).measured_rate)


class TestJobQueue:
    def test_fifo_order_within_same_submit_time(self):
        q = JobQueue()
        for i in range(3):
            q.submit(_job(f"j{i}"))
        assert [j.job_id for j in q.visible(0.0)] == ["j0", "j1", "j2"]

    def test_ordered_by_submit_time_first(self):
        q = JobQueue()
        q.submit(_job("late", submit_time=10.0))
        q.submit(_job("early", submit_time=1.0))
        assert [j.job_id for j in q] == ["early", "late"]

    def test_visibility_follows_clock(self):
        q = JobQueue()
        q.submit(_job("now", submit_time=0.0))
        q.submit(_job("later", submit_time=7.5))
        assert [j.job_id for j in q.visible(5.0)] == ["now"]
        assert [j.job_id for j in q.visible(7.5)] == ["now", "later"]
        assert q.next_arrival(5.0) == pytest.approx(7.5)
        assert q.next_arrival(8.0) is None

    def test_remove_and_duplicates(self):
        q = JobQueue()
        q.submit(_job("a"))
        with pytest.raises(ConfigurationError):
            q.submit(_job("a"))
        removed = q.remove("a")
        assert removed.job_id == "a"
        assert not q
        with pytest.raises(ConfigurationError):
            q.remove("a")
