"""Tests for per-application power profiles and cap selection."""

import pytest

from repro.core.model import PowerCapModel
from repro.exceptions import ConfigurationError
from repro.scheduler import AppPowerProfile, PowerBook
from repro.scheduler.powerbook import steady_sizing


def synthetic_profile(beta=1.0, r_max=100.0, p_uncapped=95.0, alpha=2.0):
    return AppPowerProfile(
        app_name="lammps", beta=beta, mpo=3e-4, r_max=r_max,
        p_uncapped=p_uncapped,
        model=PowerCapModel(beta=beta, r_max=r_max, p_coremax=beta * p_uncapped,
                            alpha=alpha),
        fit_residual_rms=0.0, probe_caps=(75.0, 60.0),
    )


class TestCheapestCap:
    def test_cheapest_cap_is_lowest_within_tolerance(self):
        profile = synthetic_profile()
        cap, predicted = profile.cheapest_cap(0.3, floor=50.0, ceiling=95.0,
                                              step=5.0, margin=1.0)
        assert 50.0 <= cap < 95.0
        assert predicted <= 0.3
        # one grid step cheaper must violate the tolerance (else `cap`
        # was not the cheapest qualifying point)
        if cap > 50.0:
            assert profile.predicted_slowdown(cap - 5.0) > 0.3

    def test_tighter_tolerance_needs_more_power(self):
        profile = synthetic_profile()
        loose, _ = profile.cheapest_cap(0.3, floor=40.0, ceiling=95.0,
                                        margin=1.0)
        tight, _ = profile.cheapest_cap(0.05, floor=40.0, ceiling=95.0,
                                        margin=1.0)
        assert tight > loose

    def test_margin_reserves_headroom(self):
        profile = synthetic_profile()
        plain, _ = profile.cheapest_cap(0.2, floor=40.0, ceiling=95.0,
                                        margin=1.0)
        guarded, predicted = profile.cheapest_cap(0.2, floor=40.0,
                                                  ceiling=95.0, margin=0.5)
        assert guarded >= plain
        assert predicted <= 0.1 + 1e-12

    def test_falls_back_to_ceiling_when_nothing_fits(self):
        # memory-bound profile barely slows down; an absurdly tight
        # tolerance pushes the search to the ceiling
        profile = synthetic_profile(beta=0.99)
        cap, predicted = profile.cheapest_cap(0.001, floor=50.0,
                                              ceiling=95.0, margin=1.0)
        assert cap == pytest.approx(95.0)
        assert predicted == pytest.approx(
            profile.predicted_slowdown(95.0))

    @pytest.mark.parametrize("kwargs", [
        {"tolerance": 0.0},
        {"tolerance": 1.0},
        {"floor": -1.0},
        {"floor": 100.0, "ceiling": 95.0},
        {"step": 0.0},
        {"margin": 0.0},
        {"margin": 1.5},
    ])
    def test_rejects_bad_arguments(self, kwargs):
        base = dict(tolerance=0.2, floor=50.0, ceiling=95.0, step=5.0,
                    margin=0.8)
        base.update(kwargs)
        tolerance = base.pop("tolerance")
        with pytest.raises(ConfigurationError):
            synthetic_profile().cheapest_cap(tolerance, **base)

    def test_predicted_slowdown_monotone_in_cap(self):
        profile = synthetic_profile()
        slows = [profile.predicted_slowdown(c) for c in (50, 65, 80, 95, 200)]
        assert slows == sorted(slows, reverse=True)
        assert slows[-1] == 0.0  # far above the operating point


class TestPowerBook:
    def test_preload_and_known(self):
        book = PowerBook(n_workers=2)
        book.preload(synthetic_profile())
        assert book.known() == ["lammps"]
        assert book.profile("lammps").r_max == 100.0

    def test_steady_sizing_scales_only_active_phases(self):
        sizing = steady_sizing("amg")
        assert sizing["n_iterations"] == 1_000_000
        assert sizing["setup_iterations"] == 0
        assert steady_sizing("unknown-app") == {}

    @pytest.mark.parametrize("kwargs", [
        {"n_workers": 0},
        {"warmup": 5.0, "duration": 4.0},
        {"probe_caps": ()},
        {"probe_caps": (90.0, -5.0)},
    ])
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            PowerBook(**kwargs)

    @pytest.mark.slow
    def test_real_characterization_is_consistent(self):
        book = PowerBook(n_workers=4, seed=0, duration=6.0, warmup=2.0,
                         probe_caps=(60.0, 45.0))
        profile = book.profile("lammps")
        assert profile is book.profile("lammps")  # cached
        # compute-bound: beta near 1, binding probes observed, and the
        # fitted model predicts a real slowdown at the lowest probe cap
        assert profile.beta > 0.8
        assert profile.r_max > 0
        assert profile.p_uncapped > 40.0
        assert profile.probe_caps  # at least one cap bound
        assert profile.predicted_slowdown(45.0) > 0.05
        assert profile.predicted_slowdown(45.0) < 0.8
