"""Tests for the power-aware scheduler's admission, policies, telemetry,
and determinism.

All tests use a pre-loaded :class:`PowerBook` (profiles measured once,
offline, at 4 workers) so no characterization runs are paid here; the
simulated node pool is real.
"""

import pytest

from repro.core.model import PowerCapModel
from repro.exceptions import ConfigurationError, SimulationError
from repro.scheduler import (
    AppPowerProfile,
    CapSelected,
    Job,
    JobCompleted,
    JobStarted,
    JobState,
    PowerAwareScheduler,
    PowerBook,
    SchedulerConfig,
)

pytestmark = pytest.mark.slow

#: 4-worker lammps measured offline: rate ~9e5 units/s, ~65 W uncapped.
LAMMPS_RATE = 8.96e5
LAMMPS_POWER = 65.0


def make_book(n_workers=4):
    book = PowerBook(n_workers=n_workers)
    book.preload(AppPowerProfile(
        app_name="lammps", beta=1.0, mpo=3e-4, r_max=LAMMPS_RATE,
        p_uncapped=LAMMPS_POWER,
        model=PowerCapModel(beta=1.0, r_max=LAMMPS_RATE,
                            p_coremax=LAMMPS_POWER, alpha=2.0),
        fit_residual_rms=0.0, probe_caps=(50.0,),
    ))
    return book


def make_config(**kwargs):
    defaults = dict(n_slots=3, power_budget=160.0, policy="backfill",
                    min_cap=45.0, cap_step=5.0, eco_margin=0.8,
                    n_workers=4, seed=1)
    defaults.update(kwargs)
    return SchedulerConfig(**defaults)


def make_job(job_id, *, n_nodes=1, seconds=2.5, tol=None, submit=0.0):
    return Job(job_id=job_id, app_name="lammps", n_nodes=n_nodes,
               work_units=seconds * LAMMPS_RATE, max_slowdown=tol,
               submit_time=submit, app_kwargs={"n_steps": 1_000_000})


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"n_slots": 0},
        {"power_budget": 0.0},
        {"policy": "sjf"},
        {"epoch": 0.0},
        {"min_cap": -1.0},
        {"eco_margin": 0.0},
        {"eco_margin": 1.5},
        {"n_workers": 0},
        {"stall_epochs": 0},
    ])
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            make_config(**kwargs)


class TestAdmission:
    def test_rejects_oversized_job(self):
        sched = PowerAwareScheduler(make_config(n_slots=2), make_book())
        with pytest.raises(ConfigurationError):
            sched.submit(make_job("big", n_nodes=3))

    def test_impossible_power_demand_raises(self):
        # 2 uncapped nodes want ~130 W; an 80 W budget can never host them
        sched = PowerAwareScheduler(make_config(power_budget=80.0),
                                    make_book())
        sched.submit(make_job("hog", n_nodes=2))
        with pytest.raises(SimulationError):
            sched.run()

    def test_eco_cap_shrinks_demand_under_budget(self):
        # the same 2-node job *with* a tolerance fits an 80 W budget:
        # the model picks a cap cheap enough (2 x <=40 W is infeasible,
        # so allow 100 W: 2 x 50 fits where 2 x 65 did not)
        sched = PowerAwareScheduler(make_config(power_budget=100.0),
                                    make_book())
        sched.submit(make_job("eco", n_nodes=2, tol=0.3))
        report = sched.run()
        rec = report.records[0]
        assert rec.cap is not None and rec.cap <= 50.0
        assert rec.demand <= 100.0
        caps = report.events.of_type(CapSelected)
        assert caps and caps[0].predicted_slowdown <= 0.3 * 0.8 + 1e-9

    def test_future_arrival_waits_then_starts_immediately(self):
        sched = PowerAwareScheduler(make_config(), make_book())
        sched.submit(make_job("later", submit=3.0))
        report = sched.run()
        rec = report.records[0]
        assert rec.start_time == pytest.approx(3.0)
        assert rec.wait_time == pytest.approx(0.0)


class TestPolicies:
    def _workload(self, policy):
        # C occupies the budget; head A (2 nodes, ~130 W) cannot fit
        # beside it; B (eco, 1 node, ~50 W) can.
        sched = PowerAwareScheduler(make_config(policy=policy), make_book())
        sched.submit(make_job("C", seconds=3.0))
        sched.submit(make_job("A", n_nodes=2, seconds=2.0))
        sched.submit(make_job("B", tol=0.3, seconds=2.0))
        return sched.run()

    def test_fcfs_head_blocks_later_jobs(self):
        report = self._workload("fcfs")
        recs = {r.job.job_id: r for r in report.records}
        assert recs["B"].start_time >= recs["A"].start_time
        assert recs["A"].start_time > 0.0

    def test_backfill_lets_small_job_overtake_blocked_head(self):
        report = self._workload("backfill")
        recs = {r.job.job_id: r for r in report.records}
        assert recs["B"].start_time == pytest.approx(0.0)
        assert recs["A"].start_time > 0.0
        # and backfilling never delays the head beyond its fcfs start
        fcfs = {r.job.job_id: r for r in self._workload("fcfs").records}
        assert recs["A"].start_time <= fcfs["A"].start_time + 1e-9


class TestRunOutcomes:
    def test_report_accounting_and_zero_violations(self):
        sched = PowerAwareScheduler(make_config(), make_book())
        sched.submit(make_job("a", n_nodes=2, tol=0.3, seconds=3.0))
        sched.submit(make_job("b", tol=0.3, seconds=2.0))
        report = sched.run()
        assert report.violations == 0
        assert all(r.state is JobState.COMPLETED for r in report.records)
        assert report.makespan > 0.0
        assert report.total_energy > 0.0
        assert not report.power.is_empty()
        assert report.utilisation.max() <= 1.0 + 1e-9
        assert report.power.max() <= 160.0 + 1e-6
        starts = report.events.of_type(JobStarted)
        dones = report.events.of_type(JobCompleted)
        assert {e.job_id for e in starts} == {"a", "b"}
        assert {e.job_id for e in dones} == {"a", "b"}
        # interpolated completion lies before the detecting epoch edge
        for rec in report.records:
            assert rec.end_time <= report.makespan + 1e-9
            assert rec.run_time > 0.0

    def test_multi_node_eco_job_rebalances_within_cap_budget(self):
        sched = PowerAwareScheduler(make_config(), make_book())
        sched.submit(make_job("pair", n_nodes=2, tol=0.3, seconds=3.0))
        report = sched.run()
        rec = report.records[0]
        assert rec.within_tolerance
        # demand charged = n_nodes * cap, and the measured power stayed
        # under it (RAPL enforces each node's share)
        assert report.power.max() <= rec.demand + 1e-6

    def test_work_target_beyond_app_content_is_detected(self):
        sched = PowerAwareScheduler(make_config(stall_epochs=4), make_book())
        job = Job(job_id="starved", app_name="lammps", n_nodes=1,
                  work_units=1e9, app_kwargs={"n_steps": 10})
        sched.submit(job)
        with pytest.raises(SimulationError):
            sched.run()


class TestDeterminism:
    def _run(self):
        sched = PowerAwareScheduler(make_config(), make_book())
        sched.submit(make_job("a", n_nodes=2, tol=0.25, seconds=2.5))
        sched.submit(make_job("b", tol=0.3, seconds=2.0))
        sched.submit(make_job("c", seconds=1.5, submit=2.0))
        return sched.run()

    def test_identical_seeds_produce_identical_traces(self):
        one, two = self._run(), self._run()
        assert one.events.render() == two.events.render()
        for r1, r2 in zip(one.records, two.records):
            assert r1.slots == r2.slots
            assert r1.cap == r2.cap
            assert r1.start_time == r2.start_time
            assert r1.end_time == r2.end_time
            assert r1.measured_rate == r2.measured_rate
        assert one.makespan == two.makespan
        assert list(one.power.values) == list(two.power.values)
