"""Tests for the scheduler's service seam (added for repro.daemon):
incremental stepping, cancellation, listeners, and mid-run
snapshot/restore."""

import pickle

import pytest

from repro.exceptions import CheckpointError, ConfigurationError
from repro.scheduler import (
    JobKilled,
    JobState,
    PowerAwareScheduler,
)

from tests.scheduler.test_scheduler import make_book, make_config, make_job

pytestmark = pytest.mark.slow


def make_sched(**kwargs):
    return PowerAwareScheduler(make_config(**kwargs), make_book())


class TestStep:
    def test_step_loop_equals_run(self):
        jobs = [make_job("a", n_nodes=2, tol=0.3),
                make_job("b", seconds=2.0),
                make_job("c", tol=0.25, submit=3.0)]
        ref = make_sched()
        for job in jobs:
            ref.submit(job)
        ref_report = ref.run()

        stepped = make_sched()
        for job in jobs:
            stepped.submit(job)
        while stepped.step():
            pass
        report = stepped._report()
        assert report.makespan == ref_report.makespan
        assert report.total_energy == ref_report.total_energy
        assert [(type(e).__name__, e.time) for e in stepped.events] == \
            [(type(e).__name__, e.time) for e in ref.events]

    def test_step_on_drained_cluster_is_false_and_free(self):
        sched = make_sched()
        assert sched.step() is False
        assert sched.now == 0.0

    def test_n_running_property(self):
        sched = make_sched()
        sched.submit(make_job("a", seconds=3.0))
        assert sched.n_running == 0
        sched.step()
        assert sched.n_running == 1


class TestListeners:
    def test_event_listener_sees_every_logged_event(self):
        sched = make_sched()
        seen = []
        sched.add_listener(seen.append)
        sched.submit(make_job("a", n_nodes=2, tol=0.3))
        sched.run()
        assert seen == list(sched.events)

    def test_epoch_listener_includes_final_epoch(self):
        sched = make_sched()
        samples = []
        sched.add_epoch_listener(
            lambda now, results: samples.append((now, {
                j: {n: r.cumulative for n, r in by_node.items()}
                for j, by_node in results.items()})))
        sched.submit(make_job("a", seconds=2.5))
        sched.run()
        # one sample per epoch, including the job's completion epoch
        assert len(samples) == 3
        assert "a" in samples[-1][1]
        final = max(samples[-1][1]["a"].values())
        assert final >= make_job("a", seconds=2.5).work_units


class TestCancel:
    def test_cancel_queued_job(self):
        sched = make_sched(n_slots=1)
        sched.submit(make_job("runs", seconds=5.0))
        sched.submit(make_job("waits", seconds=5.0))
        sched.step()
        record = sched.cancel("waits")
        assert record.state is JobState.KILLED
        kills = [e for e in sched.events if isinstance(e, JobKilled)]
        assert kills == [JobKilled(time=sched.now, job_id="waits",
                                   was_running=False)]
        sched.run()
        assert sched.records["runs"].state is JobState.COMPLETED

    def test_cancel_running_job_frees_capacity(self):
        sched = make_sched(n_slots=2)
        sched.submit(make_job("hog", n_nodes=2, seconds=60.0))
        sched.submit(make_job("next", n_nodes=2, seconds=2.5))
        sched.step()
        sched.step()
        record = sched.cancel("hog")
        assert record.state is JobState.KILLED
        assert record.end_time == sched.now
        sched.run()
        assert sched.records["next"].state is JobState.COMPLETED

    def test_cancel_unknown_or_finished_raises(self):
        sched = make_sched()
        with pytest.raises(ConfigurationError):
            sched.cancel("ghost")
        sched.submit(make_job("a"))
        sched.run()
        with pytest.raises(ConfigurationError):
            sched.cancel("a")


class TestSnapshotRestore:
    def test_midrun_snapshot_restores_bit_identically(self):
        jobs = [make_job("a", n_nodes=2, tol=0.3),
                make_job("b", seconds=2.0)]
        ref = make_sched()
        for job in jobs:
            ref.submit(job)
        ref.run()

        source = make_sched()
        for job in jobs:
            source.submit(job)
        source.step()
        source.step()
        blob = pickle.dumps(source.snapshot())
        source.close()

        target = make_sched()
        target.restore(pickle.loads(blob))
        while target.step():
            pass
        for job_id in ("a", "b"):
            got, want = target.records[job_id], ref.records[job_id]
            assert got.end_time == want.end_time
            assert got.measured_rate == want.measured_rate
            assert got.energy == want.energy
        assert target.now == ref.now
        assert list(target.power_series.values) == \
            list(ref.power_series.values)

    def test_restore_requires_fresh_scheduler(self):
        source = make_sched()
        source.submit(make_job("a"))
        source.step()
        state = source.snapshot()
        dirty = make_sched()
        dirty.submit(make_job("other"))
        with pytest.raises(CheckpointError):
            dirty.restore(state)

    def test_snapshot_does_not_alias_live_records(self):
        sched = make_sched()
        sched.submit(make_job("a"))
        sched.step()
        state = sched.snapshot()
        sched.run()
        assert state["records"]["a"].state is JobState.RUNNING

    def test_snapshot_version_checked(self):
        sched = make_sched()
        state = sched.snapshot()
        state["version"] = 99
        with pytest.raises(CheckpointError):
            make_sched().restore(state)
