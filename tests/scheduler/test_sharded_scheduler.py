"""Golden parity for the sharded scheduler.

``fixtures/golden_scheduler.json`` was recorded by the serial
pre-refactor ``PowerAwareScheduler`` (before node execution moved onto
:class:`~repro.cluster.sharding.ShardedLockstep`). Every shard count
must reproduce the full report — power series, per-job records, event
trace — with exactly equal floats.
"""

import json
import pathlib

import pytest

pytestmark = pytest.mark.slow

from repro.core.model import PowerCapModel
from repro.scheduler import (
    AppPowerProfile,
    Job,
    PowerAwareScheduler,
    PowerBook,
    SchedulerConfig,
)

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "golden_scheduler.json"

RATE, POWER = 8.96e5, 65.0


def _book():
    book = PowerBook(n_workers=4)
    book.preload(AppPowerProfile(
        app_name="lammps", beta=1.0, mpo=3e-4, r_max=RATE,
        p_uncapped=POWER,
        model=PowerCapModel(beta=1.0, r_max=RATE, p_coremax=POWER,
                            alpha=2.0),
        fit_residual_rms=0.0, probe_caps=(50.0,)))
    return book


def _run(shards):
    cfg = SchedulerConfig(n_slots=4, power_budget=260.0, policy="backfill",
                          min_cap=45.0, cap_step=5.0, eco_margin=0.8,
                          n_workers=4, variability=(0.04, 0.06), seed=3,
                          shards=shards)
    sched = PowerAwareScheduler(cfg, _book())
    kw = {"n_steps": 1_000_000}
    sched.submit(Job("rigid", "lammps", n_nodes=2, work_units=6.5 * RATE,
                     submit_time=0.0, app_kwargs=kw))
    sched.submit(Job("eco", "lammps", n_nodes=2, work_units=5.0 * RATE,
                     submit_time=1.0, max_slowdown=0.3, app_kwargs=kw))
    sched.submit(Job("late", "lammps", n_nodes=3, work_units=4.0 * RATE,
                     submit_time=4.0, app_kwargs=kw))
    try:
        sched.run()
        return {
            "total_energy": sched.total_energy,
            "violations": sched.violations,
            "power_times": list(sched.power_series.times),
            "power_values": list(sched.power_series.values),
            "committed": list(sched.committed_series.values),
            "utilisation": list(sched.utilisation.values),
            "records": {jid: [r.start_time, r.end_time, r.energy,
                              r.measured_rate, r.cap, list(r.slots)]
                        for jid, r in sched.records.items()},
            "events": [repr(e) for e in sched.events],
        }
    finally:
        sched.close()


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_matches_pre_refactor_fixture(shards):
    with open(FIXTURE) as f:
        golden = json.load(f)
    got = _run(shards)
    for key, expected in golden.items():
        assert got[key] == expected, f"{key} diverged at shards={shards}"


def test_rejects_bad_shards():
    from repro.exceptions import ConfigurationError
    with pytest.raises(ConfigurationError):
        SchedulerConfig(n_slots=1, power_budget=100.0, shards=0)
