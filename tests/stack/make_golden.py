"""Regenerate the golden parity fixtures.

The fixtures pin the *numeric* behaviour of the node-stack wiring: they
were generated at commit ee4ed50 (the last revision with the hand-rolled
Testbed / NodeInstance assemblies) and the `repro.stack`-built
replacements must reproduce every series bit-for-bit.

Run from the repo root::

    PYTHONPATH=src python tests/stack/make_golden.py
"""

from __future__ import annotations

import json
import os

from repro.cluster.node_instance import NodeInstance
from repro.experiments.harness import Testbed
from repro.hardware.config import skylake_config
from repro.nrm.schemes import FixedCapSchedule

OUT = os.path.join(os.path.dirname(__file__), "fixtures", "golden_parity.json")


def series(ts):
    return {"name": ts.name,
            "times": [float(t) for t in ts.times],
            "values": [float(v) for v in ts.values]}


def testbed_case(app, seed, schedule, app_kwargs, duration):
    tb = Testbed(seed=seed)
    r = tb.run(app, duration=duration, schedule=schedule,
               app_kwargs=app_kwargs)
    return {
        "progress": series(r.progress),
        "power": series(r.power),
        "cap": series(r.cap),
        "frequency": series(r.frequency),
        "duty": series(r.duty),
        "uncore_power": series(r.uncore_power),
        "pkg_energy": float(r.pkg_energy),
        "duration": float(r.duration),
        "mips": float(r.mips()),
    }


def node_instance_case(app, seed, budget, app_kwargs, until):
    inst = NodeInstance(0, skylake_config(), app, app_kwargs=app_kwargs,
                        seed=seed, initial_budget=budget)
    inst.advance(until / 2.0)
    first_energy = inst.epoch_energy()
    inst.receive_budget(None if budget is None else budget - 10.0)
    inst.advance(until)
    return {
        "progress": series(inst.monitor.series),
        "recent_rate": float(inst.recent_rate()),
        "cumulative": float(inst.cumulative_progress()),
        "first_epoch_energy": first_energy,
        "pkg_energy": float(inst.node.pkg_energy),
        "frequency": float(inst.node.frequency),
    }


def main():
    fixtures = {
        "testbed_lammps_capped": testbed_case(
            "lammps", 3, FixedCapSchedule(95.0, start=4.0),
            {"n_steps": 100_000, "n_workers": 8}, 8.0),
        "testbed_stream_uncapped": testbed_case(
            "stream", 11, None,
            {"n_iterations": 100_000, "n_workers": 8}, 6.0),
        "node_instance_lammps_budget": node_instance_case(
            "lammps", 5, 90.0, {"n_steps": 1_000_000, "n_workers": 8}, 6.0),
        "node_instance_amg_unbudgeted": node_instance_case(
            "amg", 9, None,
            {"n_iterations": 1_000_000, "setup_iterations": 0,
             "n_workers": 8}, 6.0),
    }
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump(fixtures, fh, indent=1)
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
