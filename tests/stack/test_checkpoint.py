"""Checkpoint round-trip property: ``snapshot -> restore -> advance(T)``
must equal ``advance(T)`` without the round-trip, bit for bit.

The matrix covers every registered app category under both controllers,
with the snapshot taken mid-run (t=4.5 s, between monitor ticks and
across a daemon cap transition at t=5 s) and pushed through a real
pickle boundary — exactly what :mod:`repro.cluster.sharding` does when
it migrates a node to a worker process.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import available
from repro.apps import build as build_app
from repro.exceptions import CheckpointError
from repro.nrm.schemes import FixedCapSchedule
from repro.stack import (
    BUDGET,
    CHECKPOINT_VERSION,
    DAEMON,
    NONE,
    NodeCheckpoint,
    NodeStack,
    StackSpec,
)

pytestmark = pytest.mark.slow

T_SNAPSHOT = 4.5
T_END = 9.0

#: Work sized so no app terminates before T_END (a finished app is a
#: legitimate state too, but a running one exercises far more of the
#: snapshot: live task frames, pending barriers, mid-window monitors).
APP_KWARGS = {
    "amg": {"n_iterations": 1_000_000, "setup_iterations": 2},
    "candle": {"max_epochs": 10_000},
    "hacc": {"n_steps": 10_000},
    "imbalance": {"equal": False, "n_iterations": 10_000},
    "lammps": {"n_steps": 1_000_000},
    "nek5000": {"n_steps": 10_000},
    "openmc": {"inactive_batches": 2, "active_batches": 10_000},
    # phase boundaries on both sides of the snapshot point:
    "qmcpack": {"vmc1_blocks": 40, "vmc2_blocks": 40, "dmc_blocks": 10_000},
    "stream": {"n_iterations": 1_000_000},
    "urban": {"duration_steps": 10_000},
}

CONTROLLER_SPECS = {
    # cap change at t=5 s lands *after* the snapshot: the restored stack
    # must apply it from replayed daemon state, not from a fresh start.
    DAEMON: dict(controller=DAEMON,
                 schedule=FixedCapSchedule(90.0, start=5.0)),
    BUDGET: dict(controller=BUDGET, initial_budget=110.0),
}


def _spec(app_name: str, controller: str, seed: int = 0) -> StackSpec:
    kwargs = dict(APP_KWARGS[app_name])
    kwargs["n_workers"] = 4
    return StackSpec(app_name=app_name, app_kwargs=kwargs, seed=seed,
                     **CONTROLLER_SPECS[controller])


def _observables(stack: NodeStack) -> dict:
    obs = {
        "now": stack.engine.clock.now,
        "pkg_energy": stack.node.pkg_energy,
        "frequency": stack.node.frequency,
        "series": {t: (list(s.times), list(s.values))
                   for t, s in stack.topic_series().items()},
        "cap": (list(stack.controller_cap_series.times),
                list(stack.controller_cap_series.values)),
        "bus_published": stack.bus.published,
        "bus_dropped": stack.bus.dropped,
    }
    if stack.daemon is not None:
        obs["power"] = (list(stack.daemon.power_series.times),
                        list(stack.daemon.power_series.values))
    return obs


def _roundtrip(stack: NodeStack) -> NodeStack:
    """Snapshot through a real pickle boundary, then rebuild."""
    blob = pickle.dumps(stack.snapshot(), protocol=4)
    return NodeStack.from_checkpoint(pickle.loads(blob))


class TestRoundTripParity:
    @pytest.mark.parametrize("controller", [DAEMON, BUDGET])
    @pytest.mark.parametrize("app_name", sorted(APP_KWARGS))
    def test_restore_then_advance_matches_straight_run(self, app_name,
                                                       controller):
        assert sorted(APP_KWARGS) == available()  # matrix stays exhaustive
        spec = _spec(app_name, controller)

        # Control pauses at the same instant (pausing alone splits a
        # power-integration interval, worth a ULP of energy); the
        # round-trip is the only difference between the two runs.
        control = NodeStack(spec)
        control.run(until=T_SNAPSHOT)
        control.run(until=T_END)

        paused = NodeStack(spec)
        paused.run(until=T_SNAPSHOT)
        resumed = _roundtrip(paused)
        assert resumed.engine.clock.now == paused.engine.clock.now
        resumed.run(until=T_END)

        assert _observables(resumed) == _observables(control)

    @pytest.mark.parametrize("controller", [DAEMON, BUDGET])
    def test_double_roundtrip(self, controller):
        """Snapshotting a restored stack keeps working (checkpoint is
        not a one-shot operation)."""
        spec = _spec("lammps", controller)
        control = NodeStack(spec)
        for t in (3.0, 6.0, T_END):
            control.run(until=t)

        stack = NodeStack(spec)
        stack.run(until=3.0)
        stack = _roundtrip(stack)
        stack.run(until=6.0)
        stack = _roundtrip(stack)
        stack.run(until=T_END)
        assert _observables(stack) == _observables(control)

    def test_controllerless_stack(self):
        """The NRM examples assemble with ``controller="none"``; the
        round-trip must hold there too (the controller slot is None)."""
        spec = StackSpec(app_name="lammps",
                         app_kwargs={"n_steps": 1_000_000, "n_workers": 4},
                         seed=3, controller=NONE)
        control = NodeStack(spec)
        control.run(until=T_SNAPSHOT)
        control.run(until=T_END)

        stack = NodeStack(spec)
        stack.run(until=T_SNAPSHOT)
        stack = _roundtrip(stack)
        stack.run(until=T_END)
        assert stack.node.pkg_energy == control.node.pkg_energy
        assert {t: (list(s.times), list(s.values))
                for t, s in stack.topic_series().items()} == \
            {t: (list(s.times), list(s.values))
             for t, s in control.topic_series().items()}

    @given(t_snap=st.floats(min_value=0.0, max_value=6.0),
           seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_any_snapshot_time_and_seed(self, t_snap, seed):
        """The round-trip is an identity at *any* point in the run, not
        just between ticks, and for any seed."""
        spec = _spec("openmc", BUDGET, seed=seed)  # lossy transport: RNG too
        control = NodeStack(spec)
        control.run(until=t_snap)
        control.run(until=8.0)

        stack = NodeStack(spec)
        stack.run(until=t_snap)
        stack = _roundtrip(stack)
        stack.run(until=8.0)
        assert _observables(stack) == _observables(control)


class TestCheckpointErrors:
    def test_prebuilt_app_cannot_checkpoint(self):
        app = build_app("stream", n_iterations=50, n_workers=4)
        stack = NodeStack(StackSpec(app_name="stream"), app=app)
        with pytest.raises(CheckpointError, match="prebuilt"):
            stack.snapshot()

    def test_version_mismatch_rejected(self):
        stack = NodeStack(_spec("lammps", BUDGET))
        stack.run(until=2.0)
        cp = stack.snapshot()
        stale = NodeCheckpoint(version=CHECKPOINT_VERSION + 1,
                               spec=cp.spec, state=cp.state)
        with pytest.raises(CheckpointError, match="version"):
            NodeStack.from_checkpoint(stale)

    def test_missing_hooks_rejected(self):
        """Restoring without a hook that registered a live timer leaves
        a snapshotted timer with no rebuilt counterpart: refused (the
        reverse — a rebuilt timer absent from the snapshot — is the
        fired-one-shot case and is cancelled silently)."""
        def hook_timer(s: NodeStack) -> None:
            s.engine.add_timer(1.0, lambda now: None, period=1.0)

        stack = NodeStack(_spec("lammps", BUDGET), hooks=(hook_timer,))
        stack.run(until=2.0)
        cp = stack.snapshot()
        with pytest.raises(CheckpointError):
            NodeStack.from_checkpoint(cp)  # hooks omitted

    def test_checkpoint_is_plain_data(self):
        """The checkpoint must pickle without dragging live components
        (generators, sockets) along."""
        stack = NodeStack(_spec("urban", BUDGET))
        stack.run(until=3.0)
        cp = stack.snapshot()
        clone = pickle.loads(pickle.dumps(cp, protocol=4))
        assert clone.version == CHECKPOINT_VERSION
        assert clone.spec == stack.spec
