"""Golden parity regressions for the unified node-stack assembly.

The fixtures in ``fixtures/golden_parity.json`` were generated at commit
ee4ed50 — the last revision where the Testbed and NodeInstance wired
their stacks by hand — by ``make_golden.py``. The `repro.stack`-built
replacements must reproduce every series *bit-for-bit*: the simulator is
deterministic, so any numeric drift means the assembly changed
behaviour, not just shape.
"""

import json
import os

import pytest

pytestmark = pytest.mark.slow

from repro.cluster.node_instance import NodeInstance
from repro.experiments.harness import Testbed
from repro.hardware.config import skylake_config
from repro.nrm.schemes import FixedCapSchedule

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "golden_parity.json")


@pytest.fixture(scope="module")
def golden():
    with open(FIXTURE, encoding="utf-8") as fh:
        return json.load(fh)


def assert_series_identical(series, expected, label):
    __tracebackhide__ = True
    assert [float(t) for t in series.times] == expected["times"], \
        f"{label}: timestamps diverged"
    assert [float(v) for v in series.values] == expected["values"], \
        f"{label}: values diverged"


class TestTestbedParity:
    def test_lammps_capped_run(self, golden):
        g = golden["testbed_lammps_capped"]
        r = Testbed(seed=3).run(
            "lammps", duration=8.0,
            schedule=FixedCapSchedule(95.0, start=4.0),
            app_kwargs={"n_steps": 100_000, "n_workers": 8})
        assert_series_identical(r.progress, g["progress"], "progress")
        assert_series_identical(r.power, g["power"], "power")
        assert_series_identical(r.cap, g["cap"], "cap")
        assert_series_identical(r.frequency, g["frequency"], "frequency")
        assert_series_identical(r.duty, g["duty"], "duty")
        assert_series_identical(r.uncore_power, g["uncore_power"],
                                "uncore power")
        assert float(r.pkg_energy) == g["pkg_energy"]
        assert float(r.duration) == g["duration"]
        assert float(r.mips()) == g["mips"]

    def test_stream_uncapped_run(self, golden):
        g = golden["testbed_stream_uncapped"]
        r = Testbed(seed=11).run(
            "stream", duration=6.0,
            app_kwargs={"n_iterations": 100_000, "n_workers": 8})
        assert_series_identical(r.progress, g["progress"], "progress")
        assert_series_identical(r.power, g["power"], "power")
        assert float(r.pkg_energy) == g["pkg_energy"]
        assert float(r.mips()) == g["mips"]


class TestNodeInstanceParity:
    @staticmethod
    def _drive(app, seed, budget, app_kwargs, until):
        # Mirrors make_golden.node_instance_case exactly.
        inst = NodeInstance(0, skylake_config(), app, app_kwargs=app_kwargs,
                            seed=seed, initial_budget=budget)
        inst.advance(until / 2.0)
        first_energy = inst.epoch_energy()
        inst.receive_budget(None if budget is None else budget - 10.0)
        inst.advance(until)
        return inst, first_energy

    def test_lammps_under_budget(self, golden):
        g = golden["node_instance_lammps_budget"]
        inst, first_energy = self._drive(
            "lammps", 5, 90.0, {"n_steps": 1_000_000, "n_workers": 8}, 6.0)
        assert_series_identical(inst.monitor.series, g["progress"],
                                "progress")
        assert float(inst.recent_rate()) == g["recent_rate"]
        assert float(inst.cumulative_progress()) == g["cumulative"]
        assert first_energy == g["first_epoch_energy"]
        assert float(inst.node.pkg_energy) == g["pkg_energy"]
        assert float(inst.node.frequency) == g["frequency"]

    def test_amg_unbudgeted(self, golden):
        g = golden["node_instance_amg_unbudgeted"]
        inst, first_energy = self._drive(
            "amg", 9, None,
            {"n_iterations": 1_000_000, "setup_iterations": 0,
             "n_workers": 8}, 6.0)
        assert_series_identical(inst.monitor.series, g["progress"],
                                "progress")
        assert first_energy == g["first_epoch_energy"]
        assert float(inst.node.pkg_energy) == g["pkg_energy"]
        assert float(inst.node.frequency) == g["frequency"]
