"""Regression tests for the fixes `repro.lint` forced.

The ``ckpt-missing-version`` rule surfaced that no component snapshot
carried a schema version, and ``ckpt-key-drift`` surfaced that
``TimeSeries.restore`` silently ignored the recorded series name. Both
are now enforced at restore time; these tests pin the behaviour.
"""

import pytest

from repro.exceptions import CheckpointError, check_snapshot_version
from repro.stack import BUDGET, NodeStack, StackSpec
from repro.telemetry.timeseries import TimeSeries


def _built_stack() -> NodeStack:
    spec = StackSpec(app_name="stream", app_kwargs={"n_workers": 2},
                     seed=3, controller=BUDGET, initial_budget=100.0)
    stack = NodeStack(spec).launch()
    stack.engine.run(until=1.5)
    return stack


class TestVersionHelper:
    def test_matching_version_passes(self):
        check_snapshot_version({"version": 1}, 1, "X")

    def test_missing_version_means_version_one(self):
        # Snapshots written before the field existed restore unchanged.
        check_snapshot_version({}, 1, "X")

    def test_mismatch_raises_with_owner(self):
        with pytest.raises(CheckpointError, match="RaplFirmware.*version 99"):
            check_snapshot_version({"version": 99}, 1, "RaplFirmware")


class TestComponentSnapshotsCarryVersions:
    def test_every_component_snapshot_is_versioned(self):
        stack = _built_stack()
        snapshots = {
            "node": stack.node.snapshot(),
            "firmware": stack.firmware.snapshot(),
            "libmsr": stack.libmsr.snapshot(),
            "msr": stack.libmsr.msr.snapshot(),
            "bus": stack.bus.snapshot(),
            "monitor": stack.main_monitor.snapshot(),
            "policy": stack.policy.snapshot(),
            "app": stack.app.snapshot(),
            "engine": stack.engine.snapshot(),
            "freq_series": stack.freq_series.snapshot(),
        }
        for name, snap in snapshots.items():
            assert snap.get("version") == 1, f"{name} snapshot unversioned"

    @pytest.mark.parametrize("component", [
        "node", "firmware", "libmsr", "bus", "policy", "app", "engine",
    ])
    def test_future_version_is_refused(self, component):
        stack = _built_stack()
        target = {
            "node": stack.node,
            "firmware": stack.firmware,
            "libmsr": stack.libmsr,
            "bus": stack.bus,
            "policy": stack.policy,
            "app": stack.app,
            "engine": stack.engine,
        }[component]
        state = target.snapshot()
        state["version"] = 99
        with pytest.raises(CheckpointError, match="version"):
            target.restore(state)

    def test_versionless_snapshot_still_restores(self):
        # Backward compatibility: a pre-version snapshot is version 1.
        stack = _built_stack()
        state = stack.firmware.snapshot()
        del state["version"]
        stack.firmware.restore(state)


class TestTimeSeriesNameGuard:
    def test_roundtrip_same_name(self):
        ts = TimeSeries("power", [(0.0, 1.0), (1.0, 2.0)])
        out = TimeSeries("power")
        out.restore(ts.snapshot())
        assert list(out.values) == [1.0, 2.0]

    def test_cross_series_restore_is_refused(self):
        # Before the lint-driven fix this silently succeeded, leaving a
        # series whose name and samples disagreed about what it measures.
        ts = TimeSeries("power", [(0.0, 1.0)])
        other = TimeSeries("frequency")
        with pytest.raises(CheckpointError, match="'power'"):
            other.restore(ts.snapshot())

    def test_future_version_is_refused(self):
        ts = TimeSeries("power", [(0.0, 1.0)])
        state = ts.snapshot()
        state["version"] = 2
        with pytest.raises(CheckpointError, match="TimeSeries"):
            TimeSeries("power").restore(state)
