"""Unit tests for the StackSpec / NodeStack layer."""

import pickle

import pytest

from repro.apps import build as build_app
from repro.exceptions import ConfigurationError
from repro.nrm.schemes import FixedCapSchedule
from repro.stack import BUDGET, DAEMON, NodeStack, StackSpec, default_topics

APP_KW = {"n_steps": 1_000_000, "n_workers": 4}


class TestStackSpec:
    def test_defaults(self):
        spec = StackSpec(app_name="lammps")
        assert spec.controller == DAEMON
        assert spec.schedule is None
        assert spec.topics is None

    def test_picklable_with_schedule(self):
        spec = StackSpec(app_name="lammps", app_kwargs=APP_KW, seed=3,
                         schedule=FixedCapSchedule(90.0, start=5.0))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.schedule.cap_at(6.0) == 90.0

    def test_replace(self):
        spec = StackSpec(app_name="lammps", seed=1)
        other = spec.replace(seed=2)
        assert other.seed == 2 and spec.seed == 1

    @pytest.mark.parametrize("kwargs", [
        {"app_name": ""},
        {"app_name": "lammps", "controller": "cron"},
        {"app_name": "lammps", "monitor_interval": 0.0},
        {"app_name": "lammps", "initial_budget": 90.0},  # daemon controller
        {"app_name": "lammps", "controller": BUDGET,
         "initial_budget": -1.0},
        {"app_name": "lammps", "controller": BUDGET,
         "schedule": FixedCapSchedule(90.0)},
        {"app_name": "lammps", "topics": ()},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            StackSpec(**kwargs)


class TestNodeStack:
    def test_daemon_assembly(self):
        stack = NodeStack(StackSpec(app_name="lammps", app_kwargs=APP_KW,
                                    schedule=FixedCapSchedule(90.0)))
        assert stack.daemon is not None and stack.policy is None
        assert stack.main_topic == stack.app.topic
        assert stack.controller_cap_series is stack.daemon.cap_series

    def test_budget_assembly_applies_initial_cap(self):
        stack = NodeStack(StackSpec(app_name="lammps", app_kwargs=APP_KW,
                                    controller=BUDGET, initial_budget=90.0))
        assert stack.policy is not None and stack.daemon is None
        # admission-time cap is programmed before the first cycle runs
        limit = stack.libmsr.get_pkg_power_limit()
        assert limit.enabled
        assert limit.watts == pytest.approx(90.0, abs=0.5)

    def test_run_produces_progress(self):
        stack = NodeStack(StackSpec(app_name="lammps", app_kwargs=APP_KW))
        end = stack.run(until=4.0)
        assert end == pytest.approx(4.0)
        assert not stack.progress_series.is_empty()

    def test_launch_idempotent(self):
        stack = NodeStack(StackSpec(app_name="lammps", app_kwargs=APP_KW))
        stack.launch()
        n_tasks = len(stack.engine.tasks)
        stack.launch()
        assert len(stack.engine.tasks) == n_tasks

    def test_series_name_prefix(self):
        stack = NodeStack(StackSpec(app_name="lammps", app_kwargs=APP_KW,
                                    name="node7"))
        assert stack.progress_series.name.startswith("node7:")

    def test_node_state_tap(self):
        stack = NodeStack(StackSpec(app_name="lammps", app_kwargs=APP_KW,
                                    sample_node_state=True))
        stack.run(until=3.0)
        assert len(stack.freq_series) >= 2
        assert len(stack.uncore_series) >= 2

    def test_no_tap_without_sampling(self):
        stack = NodeStack(StackSpec(app_name="lammps", app_kwargs=APP_KW))
        stack.run(until=3.0)
        assert stack.freq_series.is_empty()

    def test_hooks_run_after_assembly(self):
        seen = []
        NodeStack(StackSpec(app_name="lammps", app_kwargs=APP_KW),
                  hooks=[lambda s: seen.append(s.app.name)])
        assert seen == ["lammps"]

    def test_prebuilt_app_wins(self):
        app = build_app("stream", n_iterations=50, n_workers=4)
        stack = NodeStack(StackSpec(app_name="stream"), app=app)
        assert stack.app is app

    def test_dvfs_pin(self):
        stack = NodeStack(StackSpec(app_name="lammps", app_kwargs=APP_KW,
                                    dvfs_freq=1.6e9))
        stack.run(until=2.0)
        assert stack.node.frequency <= 1.6e9


class TestDefaultTopics:
    def test_imbalance_monitored_under_both_definitions(self):
        app = build_app("imbalance", equal=True, n_iterations=3,
                        n_workers=4)
        assert default_topics(app) == ("progress/imbalance/iterations",
                                       "progress/imbalance/work_units")

    def test_plain_app_uses_main_topic(self):
        app = build_app("lammps", **APP_KW)
        assert default_topics(app) == (app.topic,)
