"""Tests for the powercap sysfs client (Variorum-style consumer)."""

import pytest

from repro.exceptions import PowercapError
from repro.hardware import SimulatedNode
from repro.hardware.rapl import RaplFirmware
from repro.runtime.engine import Engine, Work
from repro.sysfs import PowercapFS
from repro.sysfs.client import PowercapClient


@pytest.fixture()
def stack():
    node = SimulatedNode()
    engine = Engine(node)
    fw = RaplFirmware(node, engine)
    client = PowercapClient(PowercapFS(node, fw))
    return node, engine, fw, client


class TestReads:
    def test_zone_name(self, stack):
        *_, client = stack
        assert client.zone_name() == "package-0"

    def test_max_power_is_tdp(self, stack):
        node, *_, client = stack
        assert client.max_power_w() == pytest.approx(node.cfg.tdp)

    def test_power_limit_roundtrip_through_firmware(self, stack):
        _, _, fw, client = stack
        fw.set_limit(101.5)
        assert client.power_limit_w() == pytest.approx(101.5)

    def test_enabled_flag(self, stack):
        _, _, fw, client = stack
        assert client.enabled()
        fw.disable()
        assert not client.enabled()


class TestWrites:
    def test_set_power_limit_drives_firmware(self, stack):
        _, _, fw, client = stack
        client.set_power_limit_w(88.0)
        assert fw.limit == pytest.approx(88.0)
        assert fw.enabled

    def test_set_time_window(self, stack):
        _, _, fw, client = stack
        client.set_time_window_s(0.05)
        assert fw.window == pytest.approx(0.05)

    def test_set_enabled(self, stack):
        _, _, fw, client = stack
        client.set_enabled(False)
        assert not fw.enabled
        client.set_enabled(True)
        assert fw.enabled

    def test_rejects_nonpositive_limit(self, stack):
        *_, client = stack
        with pytest.raises(PowercapError):
            client.set_power_limit_w(0.0)

    def test_rejects_nonpositive_window(self, stack):
        *_, client = stack
        with pytest.raises(PowercapError):
            client.set_time_window_s(-1.0)


class TestEnergyPolling:
    def test_first_poll_primes(self, stack):
        *_, client = stack
        assert client.energy_delta_j() is None

    def test_delta_matches_simulated_energy(self, stack):
        node, engine, _, client = stack
        client.energy_delta_j()

        def body():
            yield Work(cycles=3.3e9)

        engine.spawn(body(), core_id=0)
        engine.run()
        delta = client.energy_delta_j()
        assert delta == pytest.approx(node.pkg_energy, rel=1e-3)

    def test_wraparound_handled(self, stack):
        node, _, _, client = stack
        wrap_uj = int(client.fs.read(
            PowercapFS.PKG + "/max_energy_range_uj")) + 1
        node.pkg_energy = (wrap_uj - 5) / 1e6
        client.energy_delta_j()
        node.pkg_energy += 10 / 1e6  # crosses the wrap
        delta = client.energy_delta_j()
        assert delta == pytest.approx(10 / 1e6, rel=0.2)
