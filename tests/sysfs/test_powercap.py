"""Unit tests for the powercap sysfs emulation."""

import os

import pytest

from repro.exceptions import PowercapError
from repro.hardware import SimulatedNode
from repro.hardware.rapl import RaplFirmware
from repro.runtime.engine import Engine
from repro.sysfs import PowercapFS


@pytest.fixture()
def fs():
    node = SimulatedNode()
    fw = RaplFirmware(node, Engine(node))
    return node, fw, PowercapFS(node, fw)


class TestTreeLayout:
    def test_lists_package_and_dram_zones(self, fs):
        _, _, pc = fs
        paths = pc.list()
        assert "intel-rapl/intel-rapl:0/name" in paths
        assert "intel-rapl/intel-rapl:0/intel-rapl:0:0/name" in paths

    def test_zone_names(self, fs):
        _, _, pc = fs
        assert pc.read("intel-rapl/intel-rapl:0/name") == "package-0\n"
        assert pc.read(PowercapFS.DRAM + "/name") == "dram\n"

    def test_exists(self, fs):
        _, _, pc = fs
        assert pc.exists(PowercapFS.PKG + "/energy_uj")
        assert not pc.exists(PowercapFS.PKG + "/bogus")

    def test_read_missing_file_raises(self, fs):
        _, _, pc = fs
        with pytest.raises(PowercapError):
            pc.read("intel-rapl/nope")


class TestReads:
    def test_energy_uj_tracks_node(self, fs):
        node, _, pc = fs
        node.accrue(1.0)
        uj = int(pc.read(PowercapFS.PKG + "/energy_uj"))
        assert uj == pytest.approx(node.pkg_energy * 1e6, abs=1.0)

    def test_power_limit_uw_reflects_firmware(self, fs):
        _, fw, pc = fs
        fw.set_limit(87.5)
        assert int(pc.read(PowercapFS.PKG + "/constraint_0_power_limit_uw")) == 87_500_000

    def test_max_power_uw_is_tdp(self, fs):
        node, _, pc = fs
        uw = int(pc.read(PowercapFS.PKG + "/constraint_0_max_power_uw"))
        assert uw == int(node.cfg.tdp * 1e6)

    def test_values_end_with_newline(self, fs):
        _, _, pc = fs
        for path in pc.list():
            assert pc.read(path).endswith("\n")


class TestWrites:
    def test_write_power_limit(self, fs):
        _, fw, pc = fs
        pc.write(PowercapFS.PKG + "/constraint_0_power_limit_uw", "95000000\n")
        assert fw.limit == pytest.approx(95.0)
        assert fw.enabled

    def test_write_time_window(self, fs):
        _, fw, pc = fs
        pc.write(PowercapFS.PKG + "/constraint_0_time_window_us", "5000")
        assert fw.window == pytest.approx(0.005)

    def test_write_enabled_zero_disables(self, fs):
        _, fw, pc = fs
        pc.write(PowercapFS.PKG + "/enabled", "0")
        assert not fw.enabled
        pc.write(PowercapFS.PKG + "/enabled", "1")
        assert fw.enabled

    def test_write_rejects_malformed_integer(self, fs):
        _, _, pc = fs
        with pytest.raises(PowercapError):
            pc.write(PowercapFS.PKG + "/constraint_0_power_limit_uw", "lots")

    def test_write_rejects_nonpositive_limit(self, fs):
        _, _, pc = fs
        with pytest.raises(PowercapError):
            pc.write(PowercapFS.PKG + "/constraint_0_power_limit_uw", "0")

    def test_write_read_only_file_raises(self, fs):
        _, _, pc = fs
        with pytest.raises(PowercapError):
            pc.write(PowercapFS.PKG + "/energy_uj", "0")

    def test_write_missing_file_raises(self, fs):
        _, _, pc = fs
        with pytest.raises(PowercapError):
            pc.write("intel-rapl/nope", "1")

    def test_write_bad_enabled_value(self, fs):
        _, _, pc = fs
        with pytest.raises(PowercapError):
            pc.write(PowercapFS.PKG + "/enabled", "2")


class TestMaterialize:
    def test_writes_real_files(self, fs, tmp_path):
        node, _, pc = fs
        node.accrue(0.5)
        root = pc.materialize(tmp_path)
        assert os.path.isdir(root)
        limit_file = tmp_path / PowercapFS.PKG / "constraint_0_power_limit_uw"
        assert limit_file.read_text().strip().isdigit()
        energy_file = tmp_path / PowercapFS.PKG / "energy_uj"
        assert int(energy_file.read_text()) > 0
