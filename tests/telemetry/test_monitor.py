"""Integration tests: progress monitor over engine + pub/sub."""

import pytest

from repro.exceptions import ConfigurationError
from repro.hardware import SimulatedNode
from repro.runtime.engine import Engine, Publish, Work
from repro.telemetry import MessageBus, ProgressMonitor

F_NOM = 3.3e9


def make_stack(bus_kwargs=None):
    node = SimulatedNode()
    engine = Engine(node)
    bus = MessageBus(node.clock, **(bus_kwargs or {}))
    pub = bus.pub_socket()
    engine.on_publish(lambda t, topic, v: pub.send(topic, v))
    return node, engine, bus


class TestMonitor:
    def test_rate_aggregation(self):
        node, engine, bus = make_stack()
        mon = ProgressMonitor(engine, bus.sub_socket("progress"))

        def body():
            # 4 iterations/s for 3 s, publishing 1 unit each
            for _ in range(12):
                yield Work(cycles=F_NOM / 4)
                yield Publish("progress", 1.0)

        engine.spawn(body(), core_id=0)
        engine.run()
        assert len(mon.series) == 3
        assert mon.series.values.tolist() == pytest.approx([4.0, 4.0, 4.0])
        assert mon.events_seen == 12

    def test_interval_scaling(self):
        node, engine, bus = make_stack()
        mon = ProgressMonitor(engine, bus.sub_socket("progress"),
                              interval=0.5)

        def body():
            for _ in range(4):
                yield Work(cycles=F_NOM / 2)  # 2 iterations/s
                yield Publish("progress", 1.0)

        engine.spawn(body(), core_id=0)
        engine.run()
        assert mon.series.mean() == pytest.approx(2.0)

    def test_lossy_transport_produces_zero_buckets(self):
        """The OpenMC glitch: dropped reports appear as spurious zeros."""
        node, engine, bus = make_stack({"drop_prob": 0.4, "seed": 11})
        mon = ProgressMonitor(engine, bus.sub_socket("progress"))

        def body():
            for _ in range(30):
                yield Work(cycles=F_NOM)  # 1 iteration/s
                yield Publish("progress", 1.0)

        engine.spawn(body(), core_id=0)
        engine.run()
        values = mon.series.values
        assert (values == 0.0).any()
        assert values.max() > 0.0

    def test_stop_halts_collection(self):
        node, engine, bus = make_stack()
        mon = ProgressMonitor(engine, bus.sub_socket("progress"))
        mon.stop()

        def body():
            yield Work(cycles=2 * F_NOM)
            yield Publish("progress", 1.0)

        engine.spawn(body(), core_id=0)
        engine.run()
        assert len(mon.series) == 0

    def test_rejects_bad_interval(self):
        node, engine, bus = make_stack()
        with pytest.raises(ConfigurationError):
            ProgressMonitor(engine, bus.sub_socket("p"), interval=0.0)
