"""Unit tests for the ZeroMQ-style pub/sub transport."""

import pytest

from repro.exceptions import ConfigurationError, TelemetryError
from repro.runtime.clock import SimClock
from repro.telemetry import MessageBus


@pytest.fixture()
def clock():
    return SimClock()


@pytest.fixture()
def bus(clock):
    return MessageBus(clock)


class TestBasics:
    def test_publish_and_receive(self, bus):
        sub = bus.sub_socket("progress")
        pub = bus.pub_socket()
        pub.send("progress/lammps", 42.0)
        msgs = sub.recv_all()
        assert len(msgs) == 1
        assert msgs[0].topic == "progress/lammps"
        assert msgs[0].value == 42.0
        assert msgs[0].time == 0.0

    def test_prefix_filtering(self, bus):
        sub = bus.sub_socket("progress/amg")
        pub = bus.pub_socket()
        pub.send("progress/lammps", 1.0)
        pub.send("progress/amg", 2.0)
        msgs = sub.recv_all()
        assert [m.value for m in msgs] == [2.0]

    def test_multiple_subscribers(self, bus):
        s1 = bus.sub_socket("progress")
        s2 = bus.sub_socket("progress")
        bus.pub_socket().send("progress", 1.0)
        assert len(s1.recv_all()) == 1
        assert len(s2.recv_all()) == 1

    def test_recv_drains_queue(self, bus):
        sub = bus.sub_socket("p")
        bus.pub_socket().send("p", 1.0)
        sub.recv_all()
        assert sub.recv_all() == []


class TestZmqSemantics:
    def test_slow_joiner_misses_earlier_messages(self, bus):
        pub = bus.pub_socket()
        pub.send("p", 1.0)
        sub = bus.sub_socket("p")
        pub.send("p", 2.0)
        assert [m.value for m in sub.recv_all()] == [2.0]

    def test_hwm_drops_overflow(self, bus):
        sub = bus.sub_socket("p", hwm=2)
        pub = bus.pub_socket()
        for i in range(5):
            pub.send("p", float(i))
        assert sub.overflowed == 3
        assert [m.value for m in sub.recv_all()] == [0.0, 1.0]

    def test_closed_sub_gets_nothing(self, bus):
        sub = bus.sub_socket("p")
        sub.close()
        bus.pub_socket().send("p", 1.0)
        with pytest.raises(TelemetryError):
            sub.recv_all()

    def test_closed_pub_cannot_send(self, bus):
        pub = bus.pub_socket()
        pub.close()
        with pytest.raises(TelemetryError):
            pub.send("p", 1.0)

    def test_hwm_must_be_positive(self, bus):
        with pytest.raises(ConfigurationError):
            bus.sub_socket("p", hwm=0)


class TestDelayAndLoss:
    def test_delayed_delivery(self, clock):
        bus = MessageBus(clock, delay=0.5)
        sub = bus.sub_socket("p")
        bus.pub_socket().send("p", 1.0)
        assert sub.recv_all() == []
        assert sub.pending() == 1
        clock.advance(0.5)
        assert [m.value for m in sub.recv_all()] == [1.0]

    def test_message_time_is_publish_time(self, clock):
        bus = MessageBus(clock, delay=1.0)
        sub = bus.sub_socket("p")
        bus.pub_socket().send("p", 1.0)
        clock.advance(1.0)
        assert sub.recv_all()[0].time == 0.0

    def test_lossy_bus_drops_fraction(self, clock):
        bus = MessageBus(clock, drop_prob=0.3, seed=7)
        sub = bus.sub_socket("p", hwm=10_000)
        pub = bus.pub_socket()
        for _ in range(2000):
            pub.send("p", 1.0)
        received = len(sub.recv_all())
        assert bus.dropped == 2000 - received
        assert 0.6 < received / 2000 < 0.8

    def test_loss_is_deterministic_per_seed(self, clock):
        def run(seed):
            bus = MessageBus(SimClock(), drop_prob=0.5, seed=seed)
            sub = bus.sub_socket("p", hwm=10_000)
            pub = bus.pub_socket()
            for i in range(100):
                pub.send("p", float(i))
            return [m.value for m in sub.recv_all()]

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_validation(self, clock):
        with pytest.raises(ConfigurationError):
            MessageBus(clock, delay=-1.0)
        with pytest.raises(ConfigurationError):
            MessageBus(clock, drop_prob=1.0)


class TestResubscribe:
    """A disconnected subscriber that comes back is a *new* slow
    joiner: fresh queue, no stale backlog (regression — the daemon's
    ``watch`` reconnect path must not replay a dead connection's
    undrained messages)."""

    def test_resubscribe_drops_stale_backlog(self, bus):
        sub = bus.sub_socket("p")
        pub = bus.pub_socket()
        pub.send("p", 1.0)  # queued but never drained
        sub.close()
        sub.resubscribe()
        assert sub.recv_all() == []
        assert sub.pending() == 0

    def test_messages_while_away_are_lost(self, bus):
        sub = bus.sub_socket("p")
        pub = bus.pub_socket()
        sub.close()
        pub.send("p", 1.0)  # published while disconnected
        sub.resubscribe()
        pub.send("p", 2.0)
        assert [m.value for m in sub.recv_all()] == [2.0]

    def test_resubscribed_socket_is_live_again(self, bus):
        sub = bus.sub_socket("progress")
        sub.close()
        sub.resubscribe()
        bus.pub_socket().send("progress/lammps", 3.0)
        msgs = sub.recv_all()
        assert [m.topic for m in msgs] == ["progress/lammps"]

    def test_resubscribe_on_connected_socket_raises(self, bus):
        sub = bus.sub_socket("p")
        with pytest.raises(TelemetryError):
            sub.resubscribe()

    def test_overflow_counter_survives_reconnect(self, bus):
        sub = bus.sub_socket("p", hwm=1)
        pub = bus.pub_socket()
        pub.send("p", 1.0)
        pub.send("p", 2.0)  # over HWM -> dropped
        assert sub.overflowed == 1
        sub.close()
        sub.resubscribe()
        assert sub.overflowed == 1  # lifetime counter, not per-connection

    def test_reconnect_does_not_duplicate_delivery(self, bus):
        sub = bus.sub_socket("p")
        pub = bus.pub_socket()
        sub.close()
        sub.resubscribe()
        pub.send("p", 5.0)
        assert len(sub.recv_all()) == 1
