"""Tests for per-rank progress and job-level reduction (paper future work)."""

import numpy as np
import pytest

from repro.apps.base import AppSpec, SyntheticApp
from repro.apps.kernels import KernelSpec, PhaseSpec
from repro.core.categories import Category, OnlineMetric
from repro.exceptions import ConfigurationError
from repro.hardware import SimulatedNode
from repro.runtime.engine import Engine
from repro.telemetry import MessageBus, ProgressMonitor
from repro.telemetry.reduction import JobProgressReducer

F_NOM = 3.3e9


def make_app(jitter=0.0, n_workers=3, iterations=30):
    spec = AppSpec(
        name="toy",
        description="per-rank toy",
        category=Category.CATEGORY_1,
        metric=OnlineMetric("Iterations per second", "it/s"),
        parallelism="openmp",
        phases=(PhaseSpec("main",
                          KernelSpec(cycles=0.33e9, jitter=jitter),
                          iterations=iterations,
                          progress_per_iteration=float(n_workers)),),
    )
    app = SyntheticApp(spec, n_workers=n_workers, seed=3)
    app.per_rank_progress = True
    return app


def run_with_reducer(app, interval=1.0):
    node = SimulatedNode()
    engine = Engine(node)
    bus = MessageBus(node.clock)
    pub = bus.pub_socket()
    engine.on_publish(lambda t, topic, v: pub.send(topic, v))
    reducer = JobProgressReducer(engine, bus, app.rank_topic_prefix,
                                 app.n_workers, interval=interval)
    app_monitor = ProgressMonitor(engine, bus.sub_socket(app.topic),
                                  interval=interval)
    app.launch(engine)
    engine.run()
    return reducer, app_monitor


class TestJobProgressReducer:
    def test_validation(self):
        node = SimulatedNode()
        engine = Engine(node)
        bus = MessageBus(node.clock)
        with pytest.raises(ConfigurationError):
            JobProgressReducer(engine, bus, "p", n_ranks=0)

    def test_reduce_before_samples_raises(self):
        node = SimulatedNode()
        engine = Engine(node)
        bus = MessageBus(node.clock)
        reducer = JobProgressReducer(engine, bus, "p", n_ranks=2)
        with pytest.raises(ConfigurationError):
            reducer.mean_rate()

    def test_balanced_app_has_unit_imbalance(self):
        reducer, _ = run_with_reducer(make_app(jitter=0.0))
        imb = reducer.imbalance()
        finite = imb.values[np.isfinite(imb.values)]
        assert np.all(finite == pytest.approx(1.0))

    def test_min_le_mean_le_max(self):
        reducer, _ = run_with_reducer(make_app(jitter=0.1))
        mn = reducer.min_rate().values
        mean = reducer.mean_rate().values
        mx = reducer.max_rate().values
        assert np.all(mn <= mean + 1e-12)
        assert np.all(mean <= mx + 1e-12)

    def test_jitter_shows_up_as_imbalance(self):
        # fine monitor interval so rank finish-time skew straddles
        # collection boundaries
        reducer, _ = run_with_reducer(make_app(jitter=0.3, iterations=80),
                                      interval=0.25)
        imb = reducer.imbalance()
        finite = imb.values[np.isfinite(imb.values)]
        assert finite.max() > 1.0

    def test_per_rank_sum_matches_app_level(self):
        app = make_app(jitter=0.0)
        reducer, app_monitor = run_with_reducer(app)
        # each rank publishes progress/n_workers; mean * n == app rate
        mean = reducer.mean_rate()
        n = min(len(mean), len(app_monitor.series))
        per_rank_total = mean.values[:n] * app.n_workers
        assert per_rank_total == pytest.approx(
            app_monitor.series.values[:n]
        )

    def test_stop(self):
        app = make_app()
        node = SimulatedNode()
        engine = Engine(node)
        bus = MessageBus(node.clock)
        pub = bus.pub_socket()
        engine.on_publish(lambda t, topic, v: pub.send(topic, v))
        reducer = JobProgressReducer(engine, bus, app.rank_topic_prefix, app.n_workers)
        reducer.stop()
        app.launch(engine)
        engine.run()
        with pytest.raises(ConfigurationError):
            reducer.mean_rate()


class TestPerRankPublishing:
    def test_disabled_by_default(self):
        app = make_app()
        app.per_rank_progress = False
        node = SimulatedNode()
        engine = Engine(node)
        topics = set()
        engine.on_publish(lambda t, topic, v: topics.add(topic))
        app.launch(engine)
        engine.run()
        assert topics == {"progress/toy"}

    def test_enabled_publishes_per_rank_topics(self):
        app = make_app(n_workers=2, iterations=3)
        node = SimulatedNode()
        engine = Engine(node)
        topics = set()
        engine.on_publish(lambda t, topic, v: topics.add(topic))
        app.launch(engine)
        engine.run()
        assert topics == {"progress/toy", "rank-progress/toy/rank0",
                          "rank-progress/toy/rank1"}
