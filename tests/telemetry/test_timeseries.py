"""Unit and property tests for TimeSeries."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.telemetry import TimeSeries


class TestBasics:
    def test_empty(self):
        ts = TimeSeries("x")
        assert len(ts) == 0
        assert ts.is_empty()

    def test_append_and_access(self):
        ts = TimeSeries("x")
        ts.append(1.0, 10.0)
        ts.append(2.0, 20.0)
        assert len(ts) == 2
        assert ts[0] == (1.0, 10.0)
        assert list(ts) == [(1.0, 10.0), (2.0, 20.0)]

    def test_constructor_samples(self):
        ts = TimeSeries("x", [(0.0, 1.0), (1.0, 2.0)])
        assert len(ts) == 2

    def test_rejects_time_going_backwards(self):
        ts = TimeSeries("x")
        ts.append(2.0, 1.0)
        with pytest.raises(ConfigurationError):
            ts.append(1.0, 1.0)

    def test_equal_times_allowed(self):
        ts = TimeSeries("x")
        ts.append(1.0, 1.0)
        ts.append(1.0, 2.0)
        assert len(ts) == 2

    def test_arrays_are_copies(self):
        ts = TimeSeries("x", [(0.0, 1.0)])
        ts.values[0] = 99.0
        assert ts[0][1] == 1.0


class TestStatistics:
    @pytest.fixture()
    def ts(self):
        return TimeSeries("x", [(0.0, 2.0), (1.0, 4.0), (2.0, 6.0)])

    def test_mean(self, ts):
        assert ts.mean() == pytest.approx(4.0)

    def test_min_max(self, ts):
        assert ts.min() == 2.0
        assert ts.max() == 6.0

    def test_std(self, ts):
        assert ts.std() == pytest.approx(np.std([2.0, 4.0, 6.0]))

    def test_cv(self, ts):
        assert ts.coefficient_of_variation() == pytest.approx(ts.std() / 4.0)

    def test_cv_undefined_at_zero_mean(self):
        ts = TimeSeries("x", [(0.0, -1.0), (1.0, 1.0)])
        with pytest.raises(ConfigurationError):
            ts.coefficient_of_variation()

    def test_empty_stats_raise(self):
        with pytest.raises(ConfigurationError):
            TimeSeries("x").mean()


class TestWindow:
    def test_half_open_interval(self):
        ts = TimeSeries("x", [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)])
        w = ts.window(0.5, 2.0)
        assert list(w) == [(1.0, 2.0)]

    def test_bad_window_raises(self):
        with pytest.raises(ConfigurationError):
            TimeSeries("x").window(2.0, 1.0)


class TestResample:
    def test_averages_within_bins(self):
        ts = TimeSeries("x", [(0.1, 1.0), (0.6, 3.0), (1.2, 10.0)])
        r = ts.resample(1.0, t_start=0.0, t_end=2.0)
        assert len(r) == 2
        assert r[0] == (pytest.approx(1.0), pytest.approx(2.0))
        assert r[1] == (pytest.approx(2.0), pytest.approx(10.0))

    def test_empty_bins_filled(self):
        ts = TimeSeries("x", [(0.5, 4.0), (2.5, 6.0)])
        r = ts.resample(1.0, t_start=0.0, t_end=3.0, fill=-1.0)
        assert r.values.tolist() == [4.0, -1.0, 6.0]

    def test_rejects_nonpositive_interval(self):
        ts = TimeSeries("x", [(0.0, 1.0)])
        with pytest.raises(ConfigurationError):
            ts.resample(0.0)

    def test_empty_series_raises(self):
        with pytest.raises(ConfigurationError):
            TimeSeries("x").resample(1.0)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100),
                  st.floats(min_value=-1e6, max_value=1e6)),
        min_size=1, max_size=50,
    )
)
def test_resample_preserves_value_range(samples):
    samples = sorted(samples, key=lambda s: s[0])
    ts = TimeSeries("x", samples)
    r = ts.resample(1.0, t_start=0.0, t_end=101.0, fill=ts.min())
    # bin means never exceed the raw extremes
    assert r.max() <= ts.max() + 1e-9
    assert r.min() >= ts.min() - 1e-9
