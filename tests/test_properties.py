"""Cross-cutting property-based tests on library invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.policies import ProgressAwareRebalancer
from repro.nrm.hierarchy import Job, SystemPowerManager
from repro.nrm.schemes import LinearDecreaseSchedule, StepSchedule
from repro.runtime.clock import SimClock
from repro.telemetry.pubsub import MessageBus


class TestPubSubConservation:
    @given(
        n_messages=st.integers(min_value=0, max_value=300),
        drop_prob=st.floats(min_value=0.0, max_value=0.9),
        hwm=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_every_message_accounted_for(self, n_messages, drop_prob, hwm,
                                         seed):
        """published == received + dropped-in-transit + overflowed, for a
        single all-matching subscriber."""
        bus = MessageBus(SimClock(), drop_prob=drop_prob, seed=seed)
        sub = bus.sub_socket("", hwm=hwm)
        pub = bus.pub_socket()
        for i in range(n_messages):
            pub.send(f"topic/{i % 3}", float(i))
        received = len(sub.recv_all())
        assert bus.published == n_messages
        assert received + bus.dropped + sub.overflowed == n_messages

    @given(values=st.lists(st.floats(allow_nan=False, allow_infinity=False),
                           max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_delivery_preserves_order_and_values(self, values):
        bus = MessageBus(SimClock())
        sub = bus.sub_socket("p", hwm=10_000)
        pub = bus.pub_socket()
        for v in values:
            pub.send("p", v)
        received = [m.value for m in sub.recv_all()]
        assert received == [float(v) for v in values]


class TestScheduleProperties:
    @given(t=st.floats(min_value=0, max_value=1e4),
           dt=st.floats(min_value=0, max_value=100))
    def test_linear_decrease_is_monotone_nonincreasing(self, t, dt):
        s = LinearDecreaseSchedule(high=160.0, low=60.0, rate=1.7, start=3.0)

        def level(x):
            cap = s.cap_at(x)
            return float("inf") if cap is None else cap

        assert level(t + dt) <= level(t) + 1e-9

    @given(low=st.floats(min_value=10.0, max_value=100.0),
           t=st.floats(min_value=0.0, max_value=1e4))
    def test_step_schedule_only_emits_configured_levels(self, low, t):
        s = StepSchedule(low=low, high=None, high_duration=7.0,
                         low_duration=11.0)
        assert s.cap_at(t) in (None, low)


class TestHierarchyProperties:
    @given(
        budget=st.floats(min_value=500.0, max_value=5000.0),
        jobs=st.lists(
            st.tuples(st.integers(min_value=1, max_value=8),
                      st.floats(min_value=0.2, max_value=5.0)),
            min_size=1, max_size=6,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_budgets_feasible_and_bounded(self, budget, jobs):
        mgr = SystemPowerManager(budget, min_node_budget=40.0)
        total_nodes = sum(n for n, _ in jobs)
        if total_nodes * 40.0 > budget:
            return  # admission would legitimately fail
        for i, (n_nodes, priority) in enumerate(jobs):
            mgr.submit(Job(f"j{i}", n_nodes=n_nodes, priority=priority))
        budgets = mgr.node_budgets()
        # floors respected
        assert all(b >= 40.0 - 1e-6 for b in budgets.values())
        # machine budget never exceeded
        spent = sum(budgets[f"j{i}"] * n for i, (n, _) in enumerate(jobs))
        assert spent <= budget * (1 + 1e-9)

    @given(
        jobs=st.lists(
            st.tuples(st.integers(min_value=1, max_value=4),
                      st.floats(min_value=0.5, max_value=2.0)),
            min_size=1, max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_unpinned_allocation_exhausts_budget(self, jobs):
        """When no job is pinned at the floor, the budget is fully spent."""
        budget = 10_000.0  # generous: nobody hits the floor
        mgr = SystemPowerManager(budget, min_node_budget=1.0)
        for i, (n_nodes, priority) in enumerate(jobs):
            mgr.submit(Job(f"j{i}", n_nodes=n_nodes, priority=priority))
        budgets = mgr.node_budgets()
        spent = sum(budgets[f"j{i}"] * n for i, (n, _) in enumerate(jobs))
        assert spent == pytest.approx(budget, rel=1e-9)


class TestRebalancerProperties:
    @given(
        rates=st.lists(st.floats(min_value=0.0, max_value=1e6),
                       min_size=1, max_size=12),
        gain=st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_allocation_conserves_budget_within_bounds(self, rates, gain):
        n = len(rates)
        budget = n * 100.0
        policy = ProgressAwareRebalancer(budget, min_node=45.0,
                                         max_node=200.0, gain=gain)
        budgets = policy.allocate(rates)
        assert len(budgets) == n
        assert sum(budgets) == pytest.approx(budget, rel=1e-6)
        assert all(45.0 - 1e-6 <= b <= 200.0 + 1e-6 for b in budgets)

    @given(
        rates=st.lists(st.floats(min_value=1.0, max_value=100.0),
                       min_size=2, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_slower_nodes_never_get_less(self, rates):
        """Budgets are anti-monotone in rate (ties allowed)."""
        policy = ProgressAwareRebalancer(len(rates) * 100.0, gain=1.0)
        budgets = policy.allocate(rates)
        order = np.argsort(rates)
        sorted_budgets = [budgets[i] for i in order]
        for a, b in zip(sorted_budgets, sorted_budgets[1:]):
            assert b <= a + 1e-6

    @given(
        rates=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=10),
        frac=st.floats(min_value=0.0, max_value=1.0),
        gain=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_any_feasible_budget_is_exactly_spent(self, rates, frac, gain):
        """For every budget in the feasible band [n*min, n*max] the
        projection lands exactly on it, with every node clamped in-bounds
        — including at both band edges where all nodes pin."""
        n = len(rates)
        lo, hi = 45.0, 200.0
        budget = n * lo + frac * n * (hi - lo)
        policy = ProgressAwareRebalancer(budget, min_node=lo, max_node=hi,
                                         gain=gain)
        budgets = policy.allocate(rates)
        assert sum(budgets) == pytest.approx(budget, rel=1e-6, abs=1e-6)
        assert all(lo - 1e-6 <= b <= hi + 1e-6 for b in budgets)

    @given(rate=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
           budget=st.floats(min_value=45.0, max_value=200.0))
    @settings(max_examples=40, deadline=None)
    def test_single_node_gets_the_whole_budget(self, rate, budget):
        policy = ProgressAwareRebalancer(budget, min_node=45.0,
                                         max_node=200.0)
        assert policy.allocate([rate]) == pytest.approx([budget])
