"""Shared helpers for the vector-engine parity suite.

Parity here means *bit* parity: every float is compared by its IEEE-754
bytes (:func:`bits`), never approximately. The drivers run one node
through the same budget schedule on the object engine
(:class:`NodeInstance`) and the vector engine
(:class:`~repro.vector.VectorEngine` host) and the tests require the
two trajectories — and the full mid-run checkpoints — to be identical.
"""

import dataclasses
import struct

import numpy as np

from repro.cluster.node_instance import NodeInstance
from repro.stack import BUDGET, StackSpec
from repro.vector import FAST_APPS, VectorEngine

#: The bespoke-body applications that must take the object fallback.
IRREGULAR_APPS = ("candle", "hacc", "imbalance", "nek5000", "urban")

#: All 10 application categories the repo models.
ALL_APPS = FAST_APPS + IRREGULAR_APPS

#: Budget schedule exercising the tracking policy: caps up, caps down,
#: uncapped interludes — one budget delivered before each 1 s epoch.
BUDGET_SCHEDULE = (None, 120.0, 80.0, 60.0, 95.0,
                   None, 70.0, 110.0, 55.0, None)


def app_kwargs(app_name: str) -> dict:
    kwargs = {"n_workers": 4}
    if app_name == "lammps":
        kwargs["n_steps"] = 10_000_000  # keep it busy for the whole run
    return kwargs


def make_spec(app_name: str, node_id: int = 0, seed: int = 7,
              cfg=None) -> StackSpec:
    return StackSpec(app_name=app_name, cfg=cfg,
                     app_kwargs=app_kwargs(app_name), seed=seed,
                     controller=BUDGET, name=f"node{node_id}")


def bits(x):
    """Canonical bit-level form: floats become their IEEE bytes,
    containers and dataclasses recurse — ``==`` on two results means the
    states are bit-identical (0.0 vs -0.0 and NaN patterns included)."""
    if isinstance(x, (bool, int, str, bytes)) or x is None:
        return x
    if isinstance(x, float):
        return struct.pack("<d", x)
    if isinstance(x, np.floating):
        return struct.pack("<d", float(x))
    if isinstance(x, np.integer):
        return int(x)
    if isinstance(x, np.ndarray):
        return [bits(v) for v in x.tolist()]
    if isinstance(x, dict):
        return {k: bits(v) for k, v in x.items()}
    if isinstance(x, (list, tuple)):
        return [bits(v) for v in x]
    if dataclasses.is_dataclass(x) and not isinstance(x, type):
        return {f.name: bits(getattr(x, f.name))
                for f in dataclasses.fields(x)}
    return x


def surface(node) -> dict:
    """The cheap per-epoch fingerprint both node kinds expose through
    the NodeInstance surface. Calling :meth:`epoch_energy` consumes the
    energy mark, so take exactly one surface per node per epoch."""
    return {
        "now": node.now,
        "pkg_energy": node.node.pkg_energy,
        "dram_energy": node.node.dram_energy,
        "frequency": node.node.frequency,
        "uncore_scale": node.node.uncore_scale,
        "mon_times": list(node.monitor.series.times),
        "mon_values": list(node.monitor.series.values),
        "epoch_energy": node.epoch_energy(),
        "cumulative": node.cumulative_progress(),
        "recent_rate": node.recent_rate(3.0),
    }


def build_pair(app_name: str, seed: int = 7):
    """One object node and one vector-host node from the same spec."""
    spec = make_spec(app_name, seed=seed)
    obj = NodeInstance.from_spec(0, spec)
    host = VectorEngine()
    host.build([(0, spec)])
    return obj, host


def checkpoint_fingerprint(snapshot: dict):
    """Bit-level form of a full NodeInstance checkpoint."""
    return bits(snapshot)
