"""Checkpoint round-trips between the engines.

A vector slot exports a standard :meth:`NodeInstance.snapshot`
checkpoint, and the vector host re-imports object checkpoints into
fresh groups — so nodes can cross engine boundaries mid-run with bit
parity in all four directions (vector->object, object->vector,
vector->vector, and the pre-start case).
"""

import pytest

pytestmark = pytest.mark.slow

from repro.cluster.node_instance import NodeInstance
from repro.cluster.sharding import ShardedLockstep, StepRequest
from repro.vector import VectorEngine
from tests.vector.conftest import (
    BUDGET_SCHEDULE,
    bits,
    build_pair,
    make_spec,
    surface,
)


def _drive(node, budgets):
    t = node.now
    for budget in budgets:
        node.receive_budget(budget)
        t += 1.0
        node.advance(t)


def _continue_and_compare(a, b, budgets=BUDGET_SCHEDULE[5:]):
    """Advance both nodes through the same tail; every epoch surface
    and the final full checkpoint must be bit-identical."""
    t = a.now
    for budget in budgets:
        a.receive_budget(budget)
        b.receive_budget(budget)
        t += 1.0
        a.advance(t)
        b.advance(t)
        assert bits(surface(a)) == bits(surface(b))
    assert bits(a.snapshot()) == bits(b.snapshot())


def _import_vector(checkpoint, node_id=0):
    host = VectorEngine()
    host.build([(node_id, checkpoint)])
    assert host.vector_node_ids == [node_id], host.fallback_node_ids
    return host.node(node_id)


class TestRoundTrips:
    @pytest.mark.parametrize("app_name", ["lammps", "openmc"])
    def test_vector_to_object(self, app_name):
        obj, host = build_pair(app_name)
        vec = host.node(0)
        _drive(obj, BUDGET_SCHEDULE[:5])
        _drive(vec, BUDGET_SCHEDULE[:5])
        restored = NodeInstance.from_checkpoint(vec.snapshot())
        _continue_and_compare(restored, obj)

    @pytest.mark.parametrize("app_name", ["lammps", "stream"])
    def test_object_to_vector(self, app_name):
        obj, host = build_pair(app_name)
        vec = host.node(0)
        _drive(obj, BUDGET_SCHEDULE[:5])
        _drive(vec, BUDGET_SCHEDULE[:5])
        imported = _import_vector(obj.snapshot())
        _continue_and_compare(imported, vec)

    def test_vector_to_vector(self):
        obj, host = build_pair("lammps")
        vec = host.node(0)
        _drive(obj, BUDGET_SCHEDULE[:5])
        _drive(vec, BUDGET_SCHEDULE[:5])
        imported = _import_vector(vec.snapshot())
        _continue_and_compare(imported, obj)

    def test_pre_start_checkpoint(self):
        """A checkpoint taken before the first advance restores onto
        either engine and both continue identically."""
        _, host = build_pair("amg")
        vec = host.node(0)
        checkpoint = vec.snapshot()
        restored_obj = NodeInstance.from_checkpoint(checkpoint)
        restored_vec = _import_vector(checkpoint)
        _continue_and_compare(restored_obj, restored_vec,
                              budgets=BUDGET_SCHEDULE[:6])

    def test_irregular_checkpoint_falls_back(self):
        """A checkpoint of a non-fast-path app imports as an object
        fallback inside the vector host, results unchanged."""
        spec = make_spec("candle")
        obj = NodeInstance.from_spec(0, spec)
        _drive(obj, BUDGET_SCHEDULE[:3])
        host = VectorEngine()
        host.build([(0, obj.snapshot())])
        assert host.fallback_node_ids == [0]
        ref = NodeInstance.from_spec(0, spec)
        _drive(ref, BUDGET_SCHEDULE[:3])
        _continue_and_compare(host.node(0), ref,
                              budgets=BUDGET_SCHEDULE[3:6])


class TestLockstepMigration:
    def test_vector_lockstep_checkpoints_restore_on_object(self):
        """Checkpoints taken through a vector-engine lockstep rebuild
        inside an object-engine lockstep (and vice versa) with
        bit-identical step results."""

        def requests(target):
            return [StepRequest(node_id=i, target=target, budget=90.0,
                                set_budget=True, windows=(3.0,))
                    for i in range(2)]

        def fingerprint(results):
            return bits([(r.node_id, r.now, r.energy, r.cumulative,
                          sorted(r.rates.items())) for r in results])

        specs = [(i, make_spec("lammps", node_id=i, seed=7 + i))
                 for i in range(2)]
        with ShardedLockstep(engine="vector") as vec_ls:
            vec_ls.add_nodes(specs)
            vec_ls.step(requests(1.0))
            checkpoints = vec_ls.checkpoint([0, 1])
            with ShardedLockstep(engine="object") as obj_ls:
                obj_ls.add_nodes(sorted(checkpoints.items()))
                obj_results = obj_ls.step(requests(2.0))
            vec_results = vec_ls.step(requests(2.0))
        assert fingerprint(obj_results) == fingerprint(vec_results)
