"""Eligibility gate: which specs take the fast path, and why not."""

import dataclasses

import pytest

from repro.stack import BUDGET, StackSpec
from repro.vector import (
    FAST_APPS,
    MAX_VECTOR_WORKERS,
    VectorEngine,
    build_profile,
    profile_key,
    supports_fast_path,
)
from tests.vector.conftest import IRREGULAR_APPS, make_spec


class TestSupportsFastPath:
    @pytest.mark.parametrize("app_name", FAST_APPS)
    def test_fast_apps_are_eligible(self, app_name):
        assert supports_fast_path(make_spec(app_name)) is None

    @pytest.mark.parametrize("app_name", IRREGULAR_APPS)
    def test_irregular_apps_are_refused_with_a_reason(self, app_name):
        reason = supports_fast_path(make_spec(app_name))
        assert isinstance(reason, str) and app_name in reason

    def test_non_budget_controller_is_refused(self):
        spec = dataclasses.replace(make_spec("lammps"),
                                   controller="daemon")
        assert "controller" in supports_fast_path(spec)

    def test_initial_budget_is_refused(self):
        spec = dataclasses.replace(make_spec("lammps"),
                                   initial_budget=100.0)
        assert "initial_budget" in supports_fast_path(spec)

    def test_too_many_workers_are_refused(self):
        spec = StackSpec(
            app_name="lammps",
            app_kwargs={"n_steps": 1000,
                        "n_workers": MAX_VECTOR_WORKERS + 1},
            seed=0, controller=BUDGET)
        assert "n_workers" in supports_fast_path(spec)

    def test_checkpoint_dict_is_refused(self):
        assert supports_fast_path({"version": 1}) is not None


class TestProfileKey:
    def test_seed_and_name_do_not_split_groups(self):
        a = make_spec("lammps", node_id=0, seed=1)
        b = make_spec("lammps", node_id=1, seed=2)
        assert profile_key(a) == profile_key(b)

    def test_different_apps_split_groups(self):
        assert profile_key(make_spec("lammps")) != \
            profile_key(make_spec("amg"))

    def test_different_kwargs_split_groups(self):
        a = make_spec("stream")
        b = dataclasses.replace(a, app_kwargs={"n_workers": 2})
        assert profile_key(a) != profile_key(b)

    def test_build_profile_refuses_ineligible_specs(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            build_profile(make_spec("candle"))


class TestHostMembership:
    def test_mixed_build_routes_each_spec(self):
        host = VectorEngine()
        host.build([(0, make_spec("lammps", node_id=0)),
                    (1, make_spec("candle", node_id=1)),
                    (2, make_spec("lammps", node_id=2, seed=9))])
        assert sorted(host.vector_node_ids) == [0, 2]
        assert host.fallback_node_ids == [1]
        assert len(host) == 3 and 1 in host and 3 not in host

    def test_duplicate_node_id_raises(self):
        from repro.exceptions import ConfigurationError

        host = VectorEngine()
        host.build([(0, make_spec("lammps"))])
        with pytest.raises(ConfigurationError):
            host.build([(0, make_spec("lammps"))])

    def test_remove_frees_both_paths(self):
        host = VectorEngine()
        host.build([(0, make_spec("lammps", node_id=0)),
                    (1, make_spec("candle", node_id=1))])
        host.remove([0, 1])
        assert len(host) == 0
