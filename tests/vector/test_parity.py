"""Golden bit-parity: vector engine == object engine, all 10 apps.

``fixtures/golden_apps.json`` was recorded by the object engine
(:class:`NodeInstance`) running each application category through the
shared budget schedule. Every test compares with :func:`bits` — IEEE
bytes, not approximately — so a single reassociated float fails.
"""

import json
import pathlib

import pytest

pytestmark = pytest.mark.slow

from repro.cluster.node_instance import NodeInstance
from repro.cluster.variability import perturb_config
from repro.hardware.config import skylake_config
from repro.vector import FAST_APPS, VectorEngine
from tests.vector.conftest import (
    ALL_APPS,
    BUDGET_SCHEDULE,
    IRREGULAR_APPS,
    bits,
    build_pair,
    make_spec,
    surface,
)

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "golden_apps.json"


def _golden():
    with open(FIXTURE) as f:
        return json.load(f)


def _drive(node, budgets=BUDGET_SCHEDULE):
    """Run the schedule, returning per-epoch surfaces."""
    trajectory = []
    t = node.now
    for budget in budgets:
        node.receive_budget(budget)
        t += 1.0
        node.advance(t)
        trajectory.append(surface(node))
    return trajectory


def _golden_surface(node):
    """The fixture's view of a finished node (cap series + counters
    reach beyond the common NodeInstance surface, so pull them from the
    full checkpoint, which both engines export in the same format)."""
    snap = node.snapshot()
    state = snap["stack"].state
    cap = state["controller"]["cap_series"]
    return {
        "now": node.now,
        "pkg_energy": node.node.pkg_energy,
        "dram_energy": node.node.dram_energy,
        "frequency": node.node.frequency,
        "uncore_scale": node.node.uncore_scale,
        "mon_times": list(node.monitor.series.times),
        "mon_values": list(node.monitor.series.values),
        "cap_times": cap["times"],
        "cap_values": cap["values"],
        "cumulative": node.cumulative_progress(),
        "recent_rate": node.recent_rate(3.0),
        "counters": state["node"]["counters"],
    }


class TestGoldenParity:
    """Both engines must reproduce the recorded object trajectories."""

    @pytest.mark.parametrize("app_name", ALL_APPS)
    def test_engines_match_fixture(self, app_name):
        golden = _golden()[app_name]
        obj, host = build_pair(app_name)
        vec = host.node(0)

        obj_traj = _drive(obj)
        vec_traj = _drive(vec)

        # epoch-by-epoch, engine vs engine (full surface incl. energy)
        assert bits(vec_traj) == bits(obj_traj)

        # end-state vs the recorded fixture (guards both engines —
        # and the fixture itself — against drift)
        for node, engine in ((obj, "object"), (vec, "vector")):
            got = _golden_surface(node)
            epoch_energies = [s["epoch_energy"] for s in
                              (obj_traj if engine == "object" else vec_traj)]
            for key, expected in golden.items():
                if key == "epoch_energies":
                    assert bits(epoch_energies) == bits(expected), engine
                else:
                    assert bits(got[key]) == bits(expected), \
                        f"{engine}:{key}"

    @pytest.mark.parametrize("app_name", ALL_APPS)
    def test_full_checkpoint_parity(self, app_name):
        """The *entire* mid-run checkpoint — engine tasks, firmware,
        bus RNG, counters, everything — must be bit-identical."""
        obj, host = build_pair(app_name)
        vec = host.node(0)
        _drive(obj, BUDGET_SCHEDULE[:5])
        _drive(vec, BUDGET_SCHEDULE[:5])
        assert bits(vec.snapshot()) == bits(obj.snapshot())


class TestRouting:
    @pytest.mark.parametrize("app_name", FAST_APPS)
    def test_fast_apps_take_the_vector_path(self, app_name):
        host = VectorEngine()
        host.build([(0, make_spec(app_name))])
        assert host.vector_node_ids == [0]
        assert host.fallback_node_ids == []

    @pytest.mark.parametrize("app_name", IRREGULAR_APPS)
    def test_irregular_apps_fall_back_to_object(self, app_name):
        host = VectorEngine()
        host.build([(0, make_spec(app_name))])
        assert host.vector_node_ids == []
        assert host.fallback_node_ids == [0]
        assert isinstance(host.node(0), NodeInstance)


class TestGroupedParity:
    def test_perturbed_group_matches_object_nodes(self):
        """A multi-node group with per-node process variation (the
        cluster's perturbation touches exactly the per-node config
        fields) stays bit-identical to independent object nodes."""
        import numpy as np

        base = skylake_config()
        specs = []
        for i in range(4):
            cfg = perturb_config(base, np.random.default_rng([11, i]),
                                 sigma_dynamic=0.05, sigma_static=0.08)
            specs.append((i, make_spec("lammps", node_id=i,
                                       seed=7 + 1000 * i, cfg=cfg)))
        host = VectorEngine()
        host.build(specs)
        assert sorted(host.vector_node_ids) == [0, 1, 2, 3]
        objs = [NodeInstance.from_spec(i, spec) for i, spec in specs]

        for budget in BUDGET_SCHEDULE[:6]:
            per_node = [budget, 100.0, None, 125.0]
            for obj, (i, _), b in zip(objs, specs, per_node):
                obj.receive_budget(b)
                host.node(i).receive_budget(b)
                t = obj.now + 1.0
                obj.advance(t)
                host.node(i).advance(t)

        for obj, (i, _) in zip(objs, specs):
            assert bits(surface(host.node(i))) == bits(surface(obj)), i

    def test_run_to_completion_matches(self):
        """An app that exhausts its work (the DONE path: workers spin
        down, rate falls to zero) stays bit-identical."""
        import dataclasses

        spec = dataclasses.replace(
            make_spec("lammps"),
            app_kwargs={"n_steps": 40, "n_workers": 4})
        obj = NodeInstance.from_spec(0, spec)
        host = VectorEngine()
        host.build([(0, spec)])
        vec = host.node(0)
        for _ in range(8):
            t = obj.now + 1.0
            obj.advance(t)
            vec.advance(t)
            assert bits(surface(vec)) == bits(surface(obj))
        assert obj.recent_rate(1.0) == 0.0  # it actually finished
